// Package dist is the synchronous round-based message-passing simulator
// the distributed algorithms run on. It implements the classic LOCAL /
// CONGEST execution model of the paper: computation proceeds in global
// rounds, in each round every vertex sends payloads to neighbors, and all
// payloads sent in round r are delivered at the start of round r+1.
//
// Every vertex executes the same procedure as a goroutine; rounds are
// channel/condition barriers. The engine meters every payload's Bits()
// size, so the same protocol can be classified as LOCAL (unbounded
// messages) or CONGEST (O(log n) bits per edge per round) from its
// measured Stats — and with Config.Enforce set, exceeding the bandwidth
// budget is a runtime error, making CONGEST legality a checked property
// rather than an assumption.
//
// # Accounting model
//
//   - A "round" is one barrier: all still-running vertices call
//     Ctx.NextRound once. Stats.Rounds is the maximum number of NextRound
//     calls made by any vertex.
//   - Each payload is metered at its Bits() size. Stats.TotalBits and
//     Stats.Messages aggregate over the whole run; Stats.MaxMessageBits is
//     the largest single payload.
//   - Stats.MaxEdgeRoundBits is the maximum, over every directed edge and
//     round, of the bits sent across that edge in that round. A protocol
//     is CONGEST-legal for budget B iff MaxEdgeRoundBits <= B; that is
//     what Stats.CongestCompatible reports and Config.Enforce enforces.
//   - With Config.CutSide set, Stats.CutBits additionally totals the bits
//     crossing the two-party cut, which is what converts runs on the
//     lower-bound constructions into communication-complexity arguments.
//
// Executions are deterministic functions of (Config.Graph, Config.Seed):
// each vertex gets a private RNG derived from the seed, and inboxes are
// delivered sorted by sender id, so goroutine scheduling never leaks into
// results or statistics.
//
// # Execution modes
//
// Below Config.Workers' threshold every vertex goroutine runs freely
// between barriers (goroutine-per-vertex). At large n the engine gates
// step execution through a bounded worker pool and shards the per-round
// metering across CPUs; both modes produce identical results, and
// bench_test.go measures the crossover.
package dist

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"distspanner/internal/graph"
)

// Payload is a message body. Bits reports its encoded size in bits — the
// quantity the engine meters and (optionally) enforces.
type Payload interface {
	Bits() int
}

// Message is one delivered payload together with its sender.
type Message struct {
	From    int
	Payload Payload
}

// Config configures a Run.
type Config struct {
	// Graph is the communication topology; vertices are 0..N()-1 and
	// messages travel only along its edges.
	Graph *graph.Graph
	// Seed drives all per-vertex randomness. Runs are deterministic
	// functions of (Graph, Seed).
	Seed int64
	// Bandwidth is the per-directed-edge per-round bit budget. Zero means
	// unlimited (pure LOCAL); a positive value defines what counts as a
	// bandwidth violation.
	Bandwidth int
	// Enforce makes a bandwidth violation abort the run with an error
	// wrapping ErrBandwidth. Without it, violations are only counted in
	// Stats.BandwidthViolations.
	Enforce bool
	// MaxRounds aborts runaway executions with an error wrapping
	// ErrRoundLimit; zero uses DefaultMaxRounds.
	MaxRounds int
	// CutSide, when non-nil, partitions the vertices into a two-party cut
	// (Alice = false, Bob = true); the engine then meters the bits
	// crossing the cut in Stats.CutBits. Length must equal Graph.N().
	CutSide []bool
	// Workers caps how many vertex steps execute concurrently. Zero picks
	// automatically: unlimited (goroutine-per-vertex) below
	// PoolThreshold vertices, a small multiple of GOMAXPROCS above it.
	// Negative forces unlimited; positive forces that cap.
	Workers int
}

// DefaultMaxRounds is the round limit used when Config.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// PoolThreshold is the vertex count at which Run switches from free
// goroutine-per-vertex execution to the gated worker pool by default.
const PoolThreshold = 4096

// ErrRoundLimit is wrapped by Run's error when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("dist: round limit exceeded")

// ErrBandwidth is wrapped by Run's error when an enforced bandwidth
// budget is violated.
var ErrBandwidth = errors.New("dist: bandwidth exceeded")

// abortSignal is panicked through vertex goroutines to unwind them when
// the run aborts; the vertex wrapper recovers it.
type abortSignal struct{}

// outMsg is one queued send.
type outMsg struct {
	to int
	p  Payload
}

// engine is the shared state of one Run.
type engine struct {
	g         *graph.Graph
	n         int
	bandwidth int
	enforce   bool
	maxRounds int
	cut       []bool
	sem       chan struct{} // nil: unlimited concurrency
	routePar  int           // goroutines for sharded metering

	mu      sync.Mutex
	cond    *sync.Cond
	gen     uint64 // round generation, bumped at each barrier release
	arrived int    // vertices blocked at the current barrier
	active  int    // vertices still running
	abort   error
	dirty   []*Ctx // vertices that arrived at the current barrier with sends queued

	ctxs  []*Ctx
	stats Stats

	wg sync.WaitGroup
}

// Run executes proc once per vertex of cfg.Graph as a synchronous
// message-passing protocol and returns the metered statistics. It returns
// an error when the round limit is exceeded or, with cfg.Enforce set, when
// any directed edge carries more than cfg.Bandwidth bits in one round.
func Run(cfg Config, proc func(*Ctx)) (*Stats, error) {
	if cfg.Graph == nil {
		return nil, errors.New("dist: Config.Graph is nil")
	}
	n := cfg.Graph.N()
	if cfg.CutSide != nil && len(cfg.CutSide) != n {
		return nil, fmt.Errorf("dist: CutSide has %d entries for %d vertices", len(cfg.CutSide), n)
	}
	if n == 0 {
		return &Stats{}, nil
	}
	e := &engine{
		g:         cfg.Graph,
		n:         n,
		bandwidth: cfg.Bandwidth,
		enforce:   cfg.Enforce,
		maxRounds: cfg.MaxRounds,
		cut:       cfg.CutSide,
		routePar:  runtime.GOMAXPROCS(0),
		active:    n,
	}
	if e.maxRounds <= 0 {
		e.maxRounds = DefaultMaxRounds
	}
	e.cond = sync.NewCond(&e.mu)
	workers := cfg.Workers
	if workers == 0 && n >= PoolThreshold {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	if workers > 0 {
		e.sem = make(chan struct{}, workers)
	}
	e.ctxs = make([]*Ctx, n)
	for v := 0; v < n; v++ {
		e.ctxs[v] = newCtx(e, v, cfg.Seed)
	}
	e.wg.Add(n)
	for v := 0; v < n; v++ {
		go e.runVertex(e.ctxs[v], proc)
	}
	e.wg.Wait()
	if e.abort != nil {
		return nil, e.abort
	}
	s := e.stats
	return &s, nil
}

// runVertex is the per-vertex goroutine wrapper: it gates entry through
// the worker pool, runs proc, and unwinds cleanly on engine aborts.
func (e *engine) runVertex(c *Ctx, proc func(*Ctx)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				// A protocol bug (bad send, failed type assertion, ...)
				// must not kill the process or deadlock the barrier: turn
				// it into a Run error and unwind every other vertex.
				e.mu.Lock()
				if e.abort == nil {
					e.abort = fmt.Errorf("dist: vertex %d panicked: %v\n%s", c.id, r, debug.Stack())
				}
				e.cond.Broadcast()
				e.mu.Unlock()
			}
		}
		e.finish(c)
	}()
	c.acquire()
	proc(c)
}

// finish retires a vertex whose proc returned (or was unwound). If every
// other active vertex is already waiting at the barrier, the retirement is
// what completes the round.
func (e *engine) finish(c *Ctx) {
	c.release()
	e.mu.Lock()
	// Sends are committed by NextRound; sends queued after a vertex's last
	// barrier are discarded, never half-delivered depending on peers.
	c.outbox = nil
	c.done = true
	e.active--
	if e.active > 0 && e.arrived == e.active {
		e.completeRoundLocked()
	}
	e.mu.Unlock()
	e.wg.Done()
}

// barrier is the body of Ctx.NextRound: park until every active vertex has
// arrived or finished, have the last one meter and deliver the round, and
// return this vertex's inbox.
func (e *engine) barrier(c *Ctx) []Message {
	c.release()
	e.mu.Lock()
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	e.arrived++
	if len(c.outbox) > 0 {
		// Dirty-sender tracking: senders register themselves on arrival, so
		// round delivery never scans the n vertex contexts. Quiet rounds —
		// ubiquitous in the later iterations of the spanner algorithms,
		// where most vertices have terminated their stars — cost O(1)
		// routing work instead of O(n).
		e.dirty = append(e.dirty, c)
	}
	if e.arrived == e.active {
		e.completeRoundLocked()
	} else {
		gen := e.gen
		for e.gen == gen && e.abort == nil {
			e.cond.Wait()
		}
	}
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	inbox := c.inbox
	c.inbox = nil
	e.mu.Unlock()
	c.acquire()
	return inbox
}

// completeRoundLocked meters and delivers every queued message, advances
// the round, and releases the barrier. Called with e.mu held by the last
// vertex to arrive (or retire).
func (e *engine) completeRoundLocked() {
	if e.abort == nil {
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			e.abort = fmt.Errorf("%w: %d rounds executed (MaxRounds %d)", ErrRoundLimit, e.stats.Rounds, e.maxRounds)
		} else {
			e.routeLocked()
		}
	}
	e.arrived = 0
	e.gen++
	e.cond.Broadcast()
}

// meterResult is the per-sender accounting of one round, computed
// independently per sender so the work can be sharded.
type meterResult struct {
	msgs, bits, cut int64
	maxMsg, maxEdge int
	viol            int64
	violTo          int // receiver of this sender's first violation, -1 if none
	violBits        int
}

// routeLocked aggregates statistics and delivers all outboxes. The dirty
// list holds exactly the vertices that queued sends this round (registered
// as they hit the barrier), in arrival order; it is re-sorted by vertex id
// so inboxes arrive sorted by sender and every statistic is deterministic
// regardless of goroutine scheduling. Senders are metered independently
// (in parallel for large rounds).
func (e *engine) routeLocked() {
	// All vertices are parked at the barrier while routing runs, so
	// truncating in place cannot race with new arrivals registering.
	senders := e.dirty
	e.dirty = e.dirty[:0]
	if len(senders) == 0 {
		return
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i].id < senders[j].id })
	results := make([]meterResult, len(senders))
	if e.routePar > 1 && len(senders) >= 64 {
		var wg sync.WaitGroup
		shard := (len(senders) + e.routePar - 1) / e.routePar
		for lo := 0; lo < len(senders); lo += shard {
			hi := lo + shard
			if hi > len(senders) {
				hi = len(senders)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					results[i] = e.meterSender(senders[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, c := range senders {
			results[i] = e.meterSender(c)
		}
	}
	for i, c := range senders {
		r := &results[i]
		e.stats.Messages += r.msgs
		e.stats.TotalBits += r.bits
		e.stats.CutBits += r.cut
		if r.maxMsg > e.stats.MaxMessageBits {
			e.stats.MaxMessageBits = r.maxMsg
		}
		if r.maxEdge > e.stats.MaxEdgeRoundBits {
			e.stats.MaxEdgeRoundBits = r.maxEdge
		}
		if r.viol > 0 {
			e.stats.BandwidthViolations += r.viol
			if e.enforce && e.abort == nil {
				e.abort = fmt.Errorf("%w: vertex %d sent %d bits to %d in round %d (budget %d)",
					ErrBandwidth, c.id, r.violBits, r.violTo, e.stats.Rounds, e.bandwidth)
			}
		}
		for _, m := range c.outbox {
			to := e.ctxs[m.to]
			if !to.done {
				to.inbox = append(to.inbox, Message{From: c.id, Payload: m.p})
			}
		}
		c.outbox = c.outbox[:0]
	}
}

// meterSender sizes one sender's round of messages: global aggregates plus
// the per-directed-edge accumulation behind MaxEdgeRoundBits and the
// bandwidth check. It touches only the sender's own state. Only the edge
// slots actually written this round are revisited (and re-zeroed), so the
// cost is O(#messages) rather than O(degree) — a vertex of degree Δ that
// pings one neighbor no longer pays a Δ-wide scan.
func (e *engine) meterSender(c *Ctx) meterResult {
	r := meterResult{violTo: -1}
	for _, m := range c.outbox {
		b := m.p.Bits()
		if b < 0 {
			b = 0
		}
		r.msgs++
		r.bits += int64(b)
		if b > r.maxMsg {
			r.maxMsg = b
		}
		if e.cut != nil && e.cut[c.id] != e.cut[m.to] {
			r.cut += int64(b)
		}
		i := c.nbrIndex(m.to)
		if b > 0 && c.edgeBits[i] == 0 {
			c.touched = append(c.touched, i)
		}
		c.edgeBits[i] += b
	}
	for _, i := range c.touched {
		eb := c.edgeBits[i]
		c.edgeBits[i] = 0
		if eb > r.maxEdge {
			r.maxEdge = eb
		}
		if e.bandwidth > 0 && eb > e.bandwidth {
			r.viol++
			if r.violTo < 0 {
				r.violTo = c.nbrs[i]
				r.violBits = eb
			}
		}
	}
	c.touched = c.touched[:0]
	return r
}
