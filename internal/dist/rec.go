package dist

import "sort"

// The flat-buffer typed inbox path. The boxed Message/Payload API routes
// every payload through an interface value: senders box, the router copies
// interface headers, and receivers type-switch per message. Protocols with
// hot busy phases (every vertex broadcasting small state deltas every
// round) pay that per-message overhead thousands of times per round, which
// is what the record path removes:
//
//   - A Rec is a flat, type-tagged record: two scalar words, three floats,
//     an optional []int tail, and a protocol-defined Tag/Flag pair. No
//     interface boxing anywhere on its path.
//   - Senders queue records with Ctx.SendRec into a per-vertex append-only
//     out arena (record headers in one slice, int tails packed in
//     another). Broadcasting the same record to many neighbors stages its
//     tail once and shares the span.
//   - The router copies records straight into the receivers' in arenas —
//     contiguous, type-tagged, sender order preserved (ascending sender
//     id, ties in send order, exactly like the boxed inbox).
//   - Receivers iterate the arena in place via Ctx.NextRoundRecs /
//     Ctx.RecvRecs. The returned records alias the arena (zero-copy): a
//     record's Ints tail is a view into the inbox buffer, valid until the
//     vertex's next blocking call. Arenas are truncated, never freed, so
//     steady-state rounds allocate nothing.
//
// Metering: a record's bit size is supplied by the sender at SendRec time
// (protocols compute it from the same accounting rules as a boxed
// payload's Bits method), so Stats are identical whichever path a protocol
// uses. Both engine modes share this delivery path; the determinism
// contract (ARCHITECTURE.md) applies to records unchanged.
//
// A protocol should use one family — records or boxed payloads — for all
// of its traffic. The engine delivers both (a mixed round wakes a parked
// receiver either way), but NextRound returns only boxed messages and
// NextRoundRecs only records, so mixed-family protocols must drain both.

// Rec is one flat typed record: the unit of the flat-buffer inbox path.
// Tag identifies the record type (protocol-defined; zero is fine), Flag
// carries protocol flag bits, A/B are scalar words, F0..F2 are float
// fields, and Ints is the variable-length tail. Unused fields are simply
// left zero; the engine never interprets any of them.
type Rec struct {
	Tag  uint8
	Flag uint8
	A, B int64
	F0   float64
	F1   float64
	F2   float64
	Ints []int
}

// InRec is one delivered record: the sender id plus the record. Ints
// aliases the receiving vertex's inbox arena — it is valid until the
// vertex's next blocking call (NextRound/Recv in either flavor) and must
// be copied if kept longer.
type InRec struct {
	From int
	Rec
	off, n int32 // tail span in the inbox arena, bound to Ints at read time
}

// outRec is one queued record send. The tail lives in the sender's
// outInts arena at [off, off+n); scalar fields are stored flat so a
// queued record is a fixed-size header plus a shared span.
type outRec struct {
	to, nbrIdx int32
	off, n     int32
	tag, flag  uint8
	bits       int64
	a, b       int64
	f0, f1, f2 float64
}

// SendRec queues rec for delivery to the neighbor to at the next round
// boundary, metered at bits bits (negative is clamped to zero — compute
// bits with the same accounting rules a boxed payload's Bits method would
// use). rec.Ints is copied into the sender's arena: consecutive SendRec
// calls passing the same Ints slice (a broadcast) stage the tail once and
// share it. Like Send, sending to a non-neighbor panics, and sends are
// committed by the vertex's next blocking call.
func (c *Ctx) SendRec(to int, rec Rec, bits int) {
	i := c.nbrIndex(to) // validates
	c.ensureScratch()
	off, n := c.stageInts(rec.Ints)
	c.outRecs = append(c.outRecs, outRec{
		to: int32(to), nbrIdx: int32(i), bits: int64(bits),
		off: off, n: n,
		tag: rec.Tag, flag: rec.Flag,
		a: rec.A, b: rec.B, f0: rec.F0, f1: rec.F1, f2: rec.F2,
	})
}

// BroadcastRec queues rec for every neighbor, staging the tail once.
func (c *Ctx) BroadcastRec(rec Rec, bits int) {
	for _, u := range c.nbrs {
		c.SendRec(u, rec, bits)
	}
}

// stageInts copies ints into the out arena and returns the staged span.
// When the caller passes the same backing slice as the previous call (the
// broadcast pattern) the previous span is reused instead of re-copied;
// callers must not mutate a slice between sends that pass it.
func (c *Ctx) stageInts(ints []int) (off, n int32) {
	if len(ints) == 0 {
		return 0, 0
	}
	if len(c.lastStaged) == len(ints) && &c.lastStaged[0] == &ints[0] {
		return c.lastOff, int32(len(ints))
	}
	off = int32(len(c.outInts))
	c.outInts = append(c.outInts, ints...)
	c.lastStaged, c.lastOff = ints, off
	return off, int32(len(ints))
}

// NextRoundRecs is NextRound for the record path: commit queued sends,
// block until the round completes, and return the round's records sorted
// by sender id (ties in send order). The returned slice and every
// record's Ints tail alias the vertex's inbox arena: they are valid until
// this vertex's next blocking call and must be copied if kept. After
// quiescence it returns an empty inbox immediately, like NextRound.
func (c *Ctx) NextRoundRecs() []InRec {
	c.blockStep()
	return c.takeRecs()
}

// RecvRecs is Recv for the record path: park until a round delivers at
// least one message, returning that round's records and ok=true, or
// (nil, false) once the network has quiesced. The same arena-aliasing
// lifetime as NextRoundRecs applies.
func (c *Ctx) RecvRecs() ([]InRec, bool) {
	if !c.blockRecv() {
		return nil, false
	}
	return c.takeRecs(), true
}

// takeRecs binds each delivered record's Ints view into the arena and
// hands the batch to the vertex, truncating the arena for the next round
// (capacity is kept: one allocation amortizes across all rounds).
func (c *Ctx) takeRecs() []InRec {
	recs := c.inRecs
	for i := range recs {
		if recs[i].n > 0 {
			recs[i].Ints = c.inInts[recs[i].off : recs[i].off+recs[i].n]
		}
	}
	c.inRecs = c.inRecs[:0]
	c.inInts = c.inInts[:0]
	return recs
}

// takeMessages hands the boxed inbox to the vertex.
func (c *Ctx) takeMessages() []Message {
	inbox := c.inbox
	c.inbox = nil
	return inbox
}

// clearSends discards all queued-but-uncommitted sends of both families.
func (c *Ctx) clearSends() {
	c.outbox = c.outbox[:0]
	c.outRecs = c.outRecs[:0]
	c.outInts = c.outInts[:0]
	c.lastStaged = nil
}

// SeekPos resolves a sender id to its position in the sorted neighbor
// list, resuming a monotone scan at j. Inboxes arrive sorted by sender,
// so decoding one inbox advances j once across the neighbor slice — a
// merge scan in place of a per-message map lookup. from must be present
// in nbrs at or after position j (the engine only delivers along edges).
func SeekPos(nbrs []int, j, from int) int {
	if nbrs[j] == from {
		return j
	}
	if j+1 < len(nbrs) && nbrs[j+1] == from {
		return j + 1
	}
	return j + sort.SearchInts(nbrs[j:], from)
}

// hasSends reports whether any send (boxed or record) is queued.
func (c *Ctx) hasSends() bool {
	return len(c.outbox) > 0 || len(c.outRecs) > 0
}
