package dist

// Stats is the engine's accounting of one run. All quantities are
// deterministic functions of (Config, procedure): two runs with the same
// configuration produce identical Stats.
type Stats struct {
	// Rounds is the number of synchronous rounds executed: the maximum
	// number of NextRound calls made by any vertex.
	Rounds int
	// Messages is the total number of payloads sent.
	Messages int64
	// TotalBits is the total metered size of all payloads.
	TotalBits int64
	// MaxMessageBits is the size of the largest single payload — the
	// LOCAL-vs-CONGEST telltale for individual messages.
	MaxMessageBits int
	// MaxEdgeRoundBits is the maximum number of bits carried by one
	// directed edge in one round: the quantity the CONGEST model bounds
	// by O(log n).
	MaxEdgeRoundBits int
	// CutBits is the total bits crossing the Config.CutSide partition;
	// zero when no cut was configured. This is the measurable quantity
	// behind the paper's two-party simulation lower bounds.
	CutBits int64
	// BandwidthViolations counts (directed edge, round) pairs whose
	// traffic exceeded Config.Bandwidth. With Config.Enforce the first
	// violation aborts the run instead.
	BandwidthViolations int64
	// ActiveSteps is the total number of vertex steps over all completed
	// rounds: each round contributes the number of vertices that ran
	// during it (ended the round by yielding in NextRound, parking in
	// Recv, or retiring). A protocol where every vertex spins NextRound
	// has ActiveSteps ≈ Rounds × n; an activity-aware protocol whose idle
	// vertices park in Recv has ActiveSteps ≈ Σ_r #active(r) — the
	// quantity the event-driven scheduler's round cost is proportional
	// to. ActiveSteps/Rounds is the mean active-vertex count per round.
	ActiveSteps int64
	// ParkedSteps is the sum over completed rounds of the number of
	// vertices parked in Recv when the round's deliveries were out (a
	// vertex woken by a delivery counts as active, not parked, in that
	// round). ParkedSteps/Rounds is the mean parked-vertex count per
	// round; parked vertices cost the event scheduler zero wakeups.
	ParkedSteps int64
	// PeakActive is the maximum single-round active-vertex count.
	PeakActive int
}

// RoundActivity is the per-round activity snapshot passed to
// Config.OnRound (and Tracer.Phase) after each completed round. Every
// field is a deterministic function of (Config.Graph, Config.Seed,
// procedure) and identical across the three execution modes — the
// cross-mode equivalence tests assert this, and the snapshot is part of
// the logical transcript that trace.Digest hashes. Field by field:
//
//   - Round: deterministic; rounds complete in the same order and count
//     in every mode.
//   - Active, Parked, Senders: deterministic; which vertices block,
//     park, or send in a round depends only on delivered messages and
//     per-vertex RNG streams, never on scheduling.
//   - Delivered, DeliveredBits: deterministic when computed. They are
//     only accumulated when Config.OnRound or Config.Tracer is set
//     (delivery-side accounting re-sizes each payload, a cost the bare
//     hot path must not pay) and read as zero otherwise.
type RoundActivity struct {
	// Round is the 1-based number of the round that just completed.
	Round int
	// Active is the number of vertices that ran during the round: they
	// ended it by yielding (NextRound), parking (Recv), or retiring.
	Active int
	// Parked is the number of vertices still parked in Recv after the
	// round's deliveries (woken receivers count as active next round).
	Parked int
	// Senders is the number of vertices that committed at least one send
	// this round.
	Senders int
	// Delivered is the number of payloads the round's routing placed in
	// live inboxes — sends to already-retired vertices are metered in
	// Stats but not delivered, so Delivered <= the round's share of
	// Stats.Messages. Zero unless OnRound or Tracer is configured.
	Delivered int
	// DeliveredBits is the total metered size of the Delivered payloads.
	// Zero unless OnRound or Tracer is configured.
	DeliveredBits int64
}

// CongestCompatible reports whether every directed edge stayed within
// budget bits in every round — i.e. whether the run was a legal CONGEST
// execution for that bandwidth.
func (s Stats) CongestCompatible(budget int) bool {
	return s.MaxEdgeRoundBits <= budget
}

// IDBits returns the number of bits needed to name one of n vertices:
// ceil(log2 n), and at least 1. It is the "word" unit of CONGEST
// accounting; the conventional CONGEST budget is O(1) words of IDBits(n)
// bits per edge per round.
func IDBits(n int) int {
	b := 1
	for v := 2; v < n; v <<= 1 {
		b++
	}
	return b
}
