package dist

// The state-machine protocol surface. A blocking procedure expresses a
// vertex as straight-line code that parks its goroutine at every round
// boundary; a Machine expresses the same vertex as an explicit resume
// point: the engine calls Step with the round's deliveries, the machine
// runs to completion (queuing sends on its Ctx) and returns how it wants
// to be scheduled next. Machines run under every mode — ModeStep drives
// them directly with no goroutines at all, while ModeBarrier/ModeEvent
// wrap them in driveMachine so the cross-mode equivalence tests can
// compare all three schedulers on identical protocol code.
//
// The resume-point contract mirrors the blocking API exactly:
//
//   - StepYield after queuing sends ≙ NextRound: sends are committed, the
//     next Step carries the completed round's inbox (possibly empty).
//   - StepPark ≙ Recv: sends are committed, the next Step happens only
//     when a round delivers to this vertex (Recs non-empty) — or when the
//     network quiesces, reported as StepIn.Quiesced (≙ Recv's ok=false).
//   - StepDone ≙ returning from the procedure. Sends queued by the final
//     step are the vertex's last words: they are committed by the
//     retirement itself and delivered with the round in flight (see
//     engine.finish) — no extra flush round needed.
//
// Inbox views (StepIn.Recs and each record's Ints tail) alias the
// vertex's inbox arena and are valid only during the Step call, exactly
// like the views returned by NextRoundRecs between blocking calls.
// After quiescence, a machine that yields anyway is stepped with an
// empty inbox (≙ NextRound returning nil immediately) and one that parks
// is stepped with Quiesced again — the inert post-quiescence epilogue.

// StepStatus is a Machine's scheduling request after one step.
type StepStatus uint8

const (
	// StepYield ends the round for this vertex and requests the next
	// one — an explicit self-wakeup, like NextRound.
	StepYield StepStatus = iota
	// StepPark parks the vertex until a delivery (or quiescence), like
	// Recv.
	StepPark
	// StepDone retires the vertex; it is never stepped again.
	StepDone
)

// StepIn is the input of one machine step.
type StepIn struct {
	// Start marks the first step of the run (no round has completed yet;
	// the inbox is empty).
	Start bool
	// Recs is the completed round's record inbox, sorted by sender id
	// (ties in send order). It aliases the vertex's inbox arena: valid
	// only during this Step call.
	Msgs []Message
	// Recs is the record-path inbox; Msgs the boxed-payload inbox. A
	// protocol uses one family (see rec.go).
	Recs []InRec
	// Quiesced reports that the network went permanently silent while
	// this machine was parked (≙ Recv ok=false): finalize and StepDone.
	Quiesced bool
}

// Machine is one vertex as an explicit state machine. Step must not
// block: it queues sends via c (SendRec/Send), consumes in, and returns
// its scheduling request. Exactly one Step runs at a time per machine;
// different machines may be stepped concurrently, so shared state needs
// the same discipline a blocking procedure needs.
type Machine interface {
	Step(c *Ctx, in StepIn) StepStatus
}

// driveMachine runs a Machine to completion on the blocking engines: it
// is the proc that ModeBarrier/ModeEvent execute for RunMachines. The
// translation is mechanical — each status maps to the corresponding
// blocking call — which is what makes machine semantics mode-identical
// by construction.
func driveMachine(c *Ctx, m Machine) {
	in := StepIn{Start: true}
	for {
		switch m.Step(c, in) {
		case StepDone:
			return
		case StepYield:
			c.blockStep()
			in = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
		case StepPark:
			if c.blockRecv() {
				in = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
			} else {
				in = StepIn{Quiesced: true}
			}
		}
	}
}

// PhasedProgram is the shape shared by the paper's algorithms: an
// unbounded loop of fixed iterations, each a grid of phases (one phase =
// one round), with parking between iterations, tag-classified wake-ups,
// and three distinct exits (halt mid-iteration, terminal announcement
// plus flush round, quiescence release). phasedMachine turns any such
// program into a Machine, so the iteration-grid control flow is encoded
// exactly once and every algorithm states only its per-phase logic.
type PhasedProgram interface {
	// Phases returns the first and last phase index of one iteration.
	Phases() (first, last int)
	// Begin starts a new iteration: bump counters, reset per-iteration
	// scratch. Called before the first phase of every iteration,
	// including one entered by a wake-up.
	Begin()
	// Emit queues phase ph's sends. Returning true announces termination:
	// the machine spends one more round committing the announcement (the
	// flush round every peer observes), then calls Terminal and retires.
	Emit(ph int) bool
	// Process consumes phase ph's inbox. Returning true halts the vertex
	// mid-iteration: Halt runs and the machine retires, its final sends
	// riding the retirement (no flush round).
	Process(ph int, recs []InRec) bool
	// Parkable reports whether the vertex owes the network nothing this
	// iteration and may park instead of running it.
	Parkable() bool
	// ParkReset adjusts state for a skipped (parked) iteration, e.g.
	// resetting the monotone star-choice continuation.
	ParkReset()
	// Classify maps a wake inbox to the phase whose round delivered it.
	Classify(recs []InRec) int
	// Halt finalizes after Process returned true (queue last words here).
	Halt()
	// Terminal finalizes after the post-Emit flush round.
	Terminal()
	// Quiesce finalizes after the network quiesced while parked.
	Quiesce()
}

// pmState is phasedMachine's resume point between steps.
type pmState uint8

const (
	pmStart  pmState = iota // no step taken yet
	pmAwait                 // yielded for phase ph's inbox
	pmParked                // parked between iterations
	pmFlush                 // terminal announced; flush round in flight
)

// phasedMachine drives a PhasedProgram through the iteration grid.
type phasedMachine struct {
	p           PhasedProgram
	first, last int
	ph          int // phase awaiting its inbox (pmAwait)
	state       pmState
	started     bool // at least one iteration begun
}

// NewPhasedMachine wraps a PhasedProgram as a Machine.
func NewPhasedMachine(p PhasedProgram) Machine {
	first, last := p.Phases()
	return &phasedMachine{p: p, first: first, last: last}
}

func (m *phasedMachine) Step(c *Ctx, in StepIn) StepStatus {
	switch m.state {
	case pmStart:
		return m.loopTop()
	case pmAwait:
		return m.afterInbox(m.ph, in.Recs)
	case pmParked:
		if in.Quiesced {
			m.p.Quiesce()
			return StepDone
		}
		m.p.Begin()
		return m.afterInbox(m.p.Classify(in.Recs), in.Recs)
	case pmFlush:
		m.p.Terminal()
		return StepDone
	}
	panic("dist: phased machine stepped after StepDone")
}

// loopTop is the head of the iteration loop: park if nothing is owed,
// otherwise begin an iteration at its first phase.
func (m *phasedMachine) loopTop() StepStatus {
	if m.started && m.p.Parkable() {
		m.p.ParkReset()
		m.state = pmParked
		return StepPark
	}
	m.started = true
	m.p.Begin()
	return m.emitFrom(m.first)
}

// emitFrom emits phase ph and yields for its inbox — or, on a terminal
// announcement, yields for the flush round.
func (m *phasedMachine) emitFrom(ph int) StepStatus {
	if m.p.Emit(ph) {
		m.state = pmFlush
		return StepYield
	}
	m.ph = ph
	m.state = pmAwait
	return StepYield
}

// afterInbox consumes phase ph's inbox and advances the grid.
func (m *phasedMachine) afterInbox(ph int, recs []InRec) StepStatus {
	if m.p.Process(ph, recs) {
		m.p.Halt()
		return StepDone
	}
	if ph == m.last {
		return m.loopTop()
	}
	return m.emitFrom(ph + 1)
}
