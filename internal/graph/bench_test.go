package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(2000, 0.005, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkDistWithin(b *testing.B) {
	g := benchGraph(500, 0.05, 2)
	h := Full(g.M())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistWithin(i%g.N(), (i*7)%g.N(), h, 4)
	}
}

func BenchmarkEdgeSetOps(b *testing.B) {
	a := Full(100000)
	c := NewEdgeSet(100000)
	for i := 0; i < 100000; i += 3 {
		c.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := a.Clone()
		x.SubtractWith(c)
		x.UnionWith(c)
	}
}
