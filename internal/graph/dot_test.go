package graph

import (
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := NewEdgeSet(g.M())
	h.Add(a)
	var sb strings.Builder
	if err := ToDOT(&sb, g, h); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "graph G {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("malformed DOT:\n%s", out)
	}
	if !strings.Contains(out, "0 -- 1 [color=red, penwidth=2];") {
		t.Fatalf("highlighted edge missing:\n%s", out)
	}
	if !strings.Contains(out, "1 -- 2;") {
		t.Fatalf("plain edge missing:\n%s", out)
	}
}

func TestToDOTWeighted(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.SetWeight(0, 2.5)
	var sb strings.Builder
	if err := ToDOT(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `label="2.5"`) {
		t.Fatalf("weight label missing:\n%s", sb.String())
	}
}

func TestDigraphToDOT(t *testing.T) {
	d := NewDigraph(3)
	a := d.AddEdge(0, 1)
	d.AddEdge(2, 1)
	h := NewEdgeSet(d.M())
	h.Add(a)
	var sb strings.Builder
	if err := DigraphToDOT(&sb, d, h); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph G {") {
		t.Fatal("not a digraph header")
	}
	if !strings.Contains(out, "0 -> 1 [color=red, penwidth=2];") {
		t.Fatalf("highlighted arc missing:\n%s", out)
	}
	if !strings.Contains(out, "2 -> 1;") {
		t.Fatalf("plain arc missing:\n%s", out)
	}
}
