// Package graph provides the graph substrate used throughout the library:
// simple undirected and directed graphs with indexed edges, optional
// non-negative edge weights, breadth-first search, and edge-set bitsets.
//
// Vertices are integers in [0, N()). Every edge has a stable integer index
// in [0, M()), assigned in insertion order; spanners, covers, and other
// edge subsets are represented as EdgeSet bitsets over these indices.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an edge between two vertices. For undirected graphs the endpoints
// are stored canonically with U < V; for directed graphs the edge is U -> V.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U <= V. It is the canonical
// form used for undirected edges.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// Arc is one direction of an edge as seen from a vertex's adjacency list:
// the neighbor it leads to and the index of the underlying edge.
type Arc struct {
	To   int
	Edge int
}

// Graph is a simple undirected graph with indexed edges and optional
// non-negative edge weights. The zero value is not usable; construct with
// New.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc
	w     []float64 // nil when unweighted
}

// New returns an empty undirected graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its index. If the
// edge already exists the existing index is returned. Self-loops and
// out-of-range endpoints panic: the paper's problems are defined on simple
// graphs.
func (g *Graph) AddEdge(u, v int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if idx, ok := g.EdgeIndex(u, v); ok {
		return idx
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v}.Canon())
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: idx})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: idx})
	if g.w != nil {
		g.w = append(g.w, 1)
	}
	return idx
}

// Edge returns the edge with index i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list, indexed by edge index.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Adj returns the adjacency list of v. The returned slice is a read-only
// view into the graph's internal storage; callers must not modify it.
func (g *Graph) Adj(v int) []Arc {
	g.checkVertex(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// MaxDegree returns the maximum vertex degree, 0 for an edgeless graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeIndex(u, v)
	return ok
}

// EdgeIndex returns the index of the undirected edge {u, v} if present.
func (g *Graph) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	// Scan the shorter adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, arc := range g.adj[a] {
		if arc.To == b {
			return arc.Edge, true
		}
	}
	return 0, false
}

// Weighted reports whether edge weights have been assigned.
func (g *Graph) Weighted() bool { return g.w != nil }

// Weight returns the weight of edge i. Unweighted graphs report weight 1
// for every edge, so algorithms can treat |H| and w(H) uniformly.
func (g *Graph) Weight(i int) float64 {
	if g.w == nil {
		if i < 0 || i >= len(g.edges) {
			panic(fmt.Sprintf("graph: edge index %d out of range", i))
		}
		return 1
	}
	return g.w[i]
}

// SetWeight assigns a non-negative weight to edge i, turning the graph
// weighted on first use.
func (g *Graph) SetWeight(i int, w float64) {
	if w < 0 {
		panic("graph: negative edge weight")
	}
	if g.w == nil {
		g.w = make([]float64, len(g.edges))
		for j := range g.w {
			g.w[j] = 1
		}
	}
	g.w[i] = w
}

// TotalWeight returns the sum of weights of the edges in s.
func (g *Graph) TotalWeight(s *EdgeSet) float64 {
	total := 0.0
	s.ForEach(func(i int) {
		total += g.Weight(i)
	})
	return total
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, edges: make([]Edge, len(g.edges)), adj: make([][]Arc, g.n)}
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = make([]Arc, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	if g.w != nil {
		c.w = make([]float64, len(g.w))
		copy(c.w, g.w)
	}
	return c
}

// Neighbors returns the sorted neighbor ids of v (without edge indices).
func (g *Graph) Neighbors(v int) []int {
	arcs := g.Adj(v)
	out := make([]int, len(arcs))
	for i, a := range arcs {
		out[i] = a.To
	}
	sort.Ints(out)
	return out
}

// BFS returns the vector of hop distances from src; unreachable vertices
// have distance -1.
func (g *Graph) BFS(src int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, arc := range g.adj[v] {
			if dist[arc.To] == -1 {
				dist[arc.To] = dist[v] + 1
				queue = append(queue, arc.To)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Ball returns the sorted vertices at hop distance at most d from v,
// including v itself.
func (g *Graph) Ball(v, d int) []int {
	g.checkVertex(v)
	if d < 0 {
		return nil
	}
	dist := map[int]int{v: 0}
	queue := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == d {
			continue
		}
		for _, arc := range g.adj[u] {
			if _, seen := dist[arc.To]; !seen {
				dist[arc.To] = dist[u] + 1
				queue = append(queue, arc.To)
			}
		}
	}
	out := make([]int, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// DistWithin returns the hop distance from u to v using only edges in the
// subset H, or -1 if v is farther than maxDepth (or unreachable). A
// maxDepth < 0 means unbounded.
func (g *Graph) DistWithin(u, v int, H *EdgeSet, maxDepth int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		return 0
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && dist[x] >= maxDepth {
			continue
		}
		for _, arc := range g.adj[x] {
			if !H.Has(arc.Edge) {
				continue
			}
			if _, seen := dist[arc.To]; seen {
				continue
			}
			if arc.To == v {
				return dist[x] + 1
			}
			dist[arc.To] = dist[x] + 1
			queue = append(queue, arc.To)
		}
	}
	return -1
}

// AvgDegree returns 2m/n, the average degree, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
