package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("MaxDegree() = %d, want 0", g.MaxDegree())
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("AvgDegree() = %f, want 0", g.AvgDegree())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	i := g.AddEdge(2, 1)
	if i != 0 {
		t.Fatalf("first edge index = %d, want 0", i)
	}
	if got := g.Edge(0); got != (Edge{U: 1, V: 2}) {
		t.Fatalf("Edge(0) = %v, want canonical {1 2}", got)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("HasEdge(0,3) = true for absent edge")
	}
	if j := g.AddEdge(1, 2); j != 0 {
		t.Fatalf("duplicate AddEdge returned %d, want existing index 0", j)
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d after duplicate insert, want 1", g.M())
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 || g.Degree(0) != 0 {
		t.Fatal("degrees wrong after single edge")
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(3)
	mustPanic(t, "self-loop", func() { g.AddEdge(1, 1) })
	mustPanic(t, "out of range", func() { g.AddEdge(0, 3) })
	mustPanic(t, "negative", func() { g.AddEdge(-1, 0) })
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	mustPanic(t, "non-endpoint", func() { e.Other(5) })
}

func TestBFSPath(t *testing.T) {
	// Path 0-1-2-3-4 plus isolated vertex 5.
	g := New(6)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, -1}
	for i, d := range want {
		if dist[i] != d {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
	if g.Connected() {
		t.Fatal("graph with isolated vertex reported connected")
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("empty and singleton graphs must be connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
}

func TestBall(t *testing.T) {
	// Star with center 0 and leaves 1..4, plus an edge 1-2.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, i)
	}
	g.AddEdge(1, 2)
	if got := g.Ball(1, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Ball(1,0) = %v, want [1]", got)
	}
	if got := g.Ball(1, 1); len(got) != 3 { // 1, 0, 2
		t.Fatalf("Ball(1,1) = %v, want 3 vertices", got)
	}
	if got := g.Ball(1, 2); len(got) != 5 {
		t.Fatalf("Ball(1,2) = %v, want all 5 vertices", got)
	}
	if got := g.Ball(0, -1); got != nil {
		t.Fatalf("Ball with negative depth = %v, want nil", got)
	}
}

func TestDistWithin(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 on vertex 2.
	g := New(4)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	e02 := g.AddEdge(0, 2)
	e23 := g.AddEdge(2, 3)

	all := Full(g.M())
	if d := g.DistWithin(0, 3, all, -1); d != 2 {
		t.Fatalf("dist(0,3) in full graph = %d, want 2", d)
	}
	// Remove the shortcut 0-2: dist(0,2) becomes 2 through vertex 1.
	h := Full(g.M())
	h.Remove(e02)
	if d := g.DistWithin(0, 2, h, -1); d != 2 {
		t.Fatalf("dist(0,2) without shortcut = %d, want 2", d)
	}
	if d := g.DistWithin(0, 2, h, 1); d != -1 {
		t.Fatalf("bounded dist(0,2) with maxDepth=1 = %d, want -1", d)
	}
	// Keep only edge 0-1: vertex 3 unreachable.
	only := NewEdgeSet(g.M())
	only.Add(e01)
	if d := g.DistWithin(0, 3, only, -1); d != -1 {
		t.Fatalf("dist(0,3) with only {0,1} = %d, want -1", d)
	}
	if d := g.DistWithin(2, 2, NewEdgeSet(g.M()), -1); d != 0 {
		t.Fatalf("dist(v,v) = %d, want 0", d)
	}
	_ = e12
	_ = e23
}

func TestWeights(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(1, 2)
	if g.Weighted() {
		t.Fatal("fresh graph reported weighted")
	}
	if g.Weight(a) != 1 || g.Weight(b) != 1 {
		t.Fatal("unweighted graph must report weight 1")
	}
	g.SetWeight(a, 2.5)
	if !g.Weighted() {
		t.Fatal("graph not weighted after SetWeight")
	}
	if g.Weight(a) != 2.5 {
		t.Fatalf("Weight(a) = %f, want 2.5", g.Weight(a))
	}
	if g.Weight(b) != 1 {
		t.Fatalf("Weight(b) = %f, want default 1", g.Weight(b))
	}
	// New edges after weighting default to weight 1.
	c := g.AddEdge(0, 2)
	if g.Weight(c) != 1 {
		t.Fatalf("Weight(c) = %f, want 1", g.Weight(c))
	}
	s := NewEdgeSet(g.M())
	s.Add(a)
	s.Add(c)
	if got := g.TotalWeight(s); got != 3.5 {
		t.Fatalf("TotalWeight = %f, want 3.5", got)
	}
	mustPanic(t, "negative weight", func() { g.SetWeight(a, -1) })
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.SetWeight(0, 4)
	c := g.Clone()
	c.AddEdge(1, 2)
	c.SetWeight(0, 9)
	if g.M() != 1 {
		t.Fatalf("clone mutation leaked: original M() = %d", g.M())
	}
	if g.Weight(0) != 4 {
		t.Fatalf("clone weight mutation leaked: %f", g.Weight(0))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
}

// Property: for random graphs, BFS distances satisfy the triangle inequality
// across each edge (|dist[u]-dist[v]| <= 1 for every edge {u,v}).
func TestBFSEdgeLipschitzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(u, v)
				}
			}
		}
		dist := g.BFS(0)
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			du, dv := dist[e.U], dist[e.V]
			if (du == -1) != (dv == -1) {
				return false // edge between reachable and unreachable vertex
			}
			if du != -1 && abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistWithin with the full edge set matches plain BFS distance.
func TestDistWithinMatchesBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(u, v)
				}
			}
		}
		full := Full(g.M())
		src := rng.Intn(n)
		dist := g.BFS(src)
		for v := 0; v < n; v++ {
			if got := g.DistWithin(src, v, full, -1); got != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// Property: Ball(v, d) is exactly the BFS level set up to depth d.
func TestBallMatchesBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(u, v)
				}
			}
		}
		v := rng.Intn(n)
		d := rng.Intn(4)
		dist := g.BFS(v)
		ball := g.Ball(v, d)
		inBall := make(map[int]bool, len(ball))
		for _, u := range ball {
			inBall[u] = true
		}
		for u := 0; u < n; u++ {
			want := dist[u] >= 0 && dist[u] <= d
			if inBall[u] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
