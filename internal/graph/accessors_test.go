package graph

import "testing"

func TestEdgesCopySemantics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges() = %v", edges)
	}
	edges[0] = Edge{U: 9, V: 9} // mutating the copy must not leak
	if g.Edge(0).U == 9 {
		t.Fatal("Edges() returned internal storage")
	}

	d := NewDigraph(3)
	d.AddEdge(0, 1)
	de := d.Edges()
	de[0] = Edge{U: 9, V: 9}
	if d.Edge(0).U == 9 {
		t.Fatal("Digraph.Edges() returned internal storage")
	}
}

func TestDigraphOutAccessors(t *testing.T) {
	d := NewDigraph(4)
	d.AddEdge(2, 0)
	d.AddEdge(2, 3)
	d.AddEdge(1, 2)
	out := d.Out(2)
	if len(out) != 2 {
		t.Fatalf("Out(2) has %d arcs, want 2", len(out))
	}
	nbrs := d.OutNeighbors(2)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 3 {
		t.Fatalf("OutNeighbors(2) = %v, want [0 3]", nbrs)
	}
}
