package graph

import (
	"fmt"
	"sort"
)

// Digraph is a simple directed graph with indexed edges and optional
// non-negative edge weights. Edge i is directed Edge(i).U -> Edge(i).V.
// Construct with NewDigraph.
type Digraph struct {
	n     int
	edges []Edge
	out   [][]Arc
	in    [][]Arc
	w     []float64
}

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Digraph{n: n, out: make([][]Arc, n), in: make([][]Arc, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Digraph) M() int { return len(g.edges) }

// AddEdge inserts the directed edge (u, v) and returns its index. If the
// edge already exists the existing index is returned. Self-loops panic.
func (g *Digraph) AddEdge(u, v int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if idx, ok := g.EdgeIndex(u, v); ok {
		return idx
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.out[u] = append(g.out[u], Arc{To: v, Edge: idx})
	g.in[v] = append(g.in[v], Arc{To: u, Edge: idx})
	if g.w != nil {
		g.w = append(g.w, 1)
	}
	return idx
}

// Edge returns the directed edge with index i.
func (g *Digraph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list, indexed by edge index.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Out returns the outgoing arcs of v. Read-only view; do not modify.
func (g *Digraph) Out(v int) []Arc {
	g.checkVertex(v)
	return g.out[v]
}

// In returns the incoming arcs of v (Arc.To is the source vertex).
// Read-only view; do not modify.
func (g *Digraph) In(v int) []Arc {
	g.checkVertex(v)
	return g.in[v]
}

// OutDegree returns the out-degree of v.
func (g *Digraph) OutDegree(v int) int {
	g.checkVertex(v)
	return len(g.out[v])
}

// InDegree returns the in-degree of v.
func (g *Digraph) InDegree(v int) int {
	g.checkVertex(v)
	return len(g.in[v])
}

// MaxDegree returns the maximum total degree (in + out) over all vertices.
func (g *Digraph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.out[v]) + len(g.in[v]); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether the directed edge (u, v) is present.
func (g *Digraph) HasEdge(u, v int) bool {
	_, ok := g.EdgeIndex(u, v)
	return ok
}

// EdgeIndex returns the index of the directed edge (u, v) if present.
func (g *Digraph) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	if len(g.out[u]) <= len(g.in[v]) {
		for _, arc := range g.out[u] {
			if arc.To == v {
				return arc.Edge, true
			}
		}
		return 0, false
	}
	for _, arc := range g.in[v] {
		if arc.To == u {
			return arc.Edge, true
		}
	}
	return 0, false
}

// Weighted reports whether edge weights have been assigned.
func (g *Digraph) Weighted() bool { return g.w != nil }

// Weight returns the weight of edge i; unweighted digraphs report 1.
func (g *Digraph) Weight(i int) float64 {
	if g.w == nil {
		if i < 0 || i >= len(g.edges) {
			panic(fmt.Sprintf("graph: edge index %d out of range", i))
		}
		return 1
	}
	return g.w[i]
}

// SetWeight assigns a non-negative weight to edge i.
func (g *Digraph) SetWeight(i int, w float64) {
	if w < 0 {
		panic("graph: negative edge weight")
	}
	if g.w == nil {
		g.w = make([]float64, len(g.edges))
		for j := range g.w {
			g.w[j] = 1
		}
	}
	g.w[i] = w
}

// TotalWeight returns the sum of weights of the edges in s.
func (g *Digraph) TotalWeight(s *EdgeSet) float64 {
	total := 0.0
	s.ForEach(func(i int) {
		total += g.Weight(i)
	})
	return total
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		n:     g.n,
		edges: make([]Edge, len(g.edges)),
		out:   make([][]Arc, g.n),
		in:    make([][]Arc, g.n),
	}
	copy(c.edges, g.edges)
	for v := 0; v < g.n; v++ {
		c.out[v] = make([]Arc, len(g.out[v]))
		copy(c.out[v], g.out[v])
		c.in[v] = make([]Arc, len(g.in[v]))
		copy(c.in[v], g.in[v])
	}
	if g.w != nil {
		c.w = make([]float64, len(g.w))
		copy(c.w, g.w)
	}
	return c
}

// Underlying returns the undirected graph obtained by forgetting edge
// directions (anti-parallel pairs collapse to one undirected edge), along
// with a mapping from each directed edge index to its undirected index.
// This is the communication graph: the paper's model communicates
// bidirectionally even for directed spanner problems.
func (g *Digraph) Underlying() (*Graph, []int) {
	u := New(g.n)
	mapping := make([]int, len(g.edges))
	for i, e := range g.edges {
		mapping[i] = u.AddEdge(e.U, e.V)
	}
	return u, mapping
}

// DistWithin returns the directed hop distance from u to v using only
// edges in the subset H, or -1 if v is farther than maxDepth (or
// unreachable). A maxDepth < 0 means unbounded.
func (g *Digraph) DistWithin(u, v int, H *EdgeSet, maxDepth int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		return 0
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && dist[x] >= maxDepth {
			continue
		}
		for _, arc := range g.out[x] {
			if !H.Has(arc.Edge) {
				continue
			}
			if _, seen := dist[arc.To]; seen {
				continue
			}
			if arc.To == v {
				return dist[x] + 1
			}
			dist[arc.To] = dist[x] + 1
			queue = append(queue, arc.To)
		}
	}
	return -1
}

// OutNeighbors returns the sorted out-neighbor ids of v.
func (g *Digraph) OutNeighbors(v int) []int {
	arcs := g.Out(v)
	out := make([]int, len(arcs))
	for i, a := range arcs {
		out[i] = a.To
	}
	sort.Ints(out)
	return out
}

func (g *Digraph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
