package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(130) // spans three words
	if s.Len() != 0 || s.Universe() != 130 {
		t.Fatal("fresh set not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported no change", i)
		}
		if s.Add(i) {
			t.Fatalf("second Add(%d) reported change", i)
		}
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", s.Len())
	}
	if !s.Remove(64) || s.Remove(64) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if s.Len() != 5 {
		t.Fatalf("Len() = %d after remove, want 5", s.Len())
	}
	if s.Has(-1) || s.Has(130) {
		t.Fatal("Has out of universe must be false")
	}
	mustPanic(t, "add out of range", func() { s.Add(130) })
}

func TestEdgeSetForEachOrder(t *testing.T) {
	s := NewEdgeSet(200)
	want := []int{3, 17, 64, 65, 190}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice() = %v, want %v", got, want)
		}
	}
}

func TestEdgeSetSetOps(t *testing.T) {
	a := NewEdgeSet(100)
	b := NewEdgeSet(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	u.UnionWith(b)
	inter := a.Clone()
	inter.IntersectWith(b)
	diff := a.Clone()
	diff.SubtractWith(b)

	for i := 0; i < 100; i++ {
		even, third := i%2 == 0, i%3 == 0
		if u.Has(i) != (even || third) {
			t.Fatalf("union wrong at %d", i)
		}
		if inter.Has(i) != (even && third) {
			t.Fatalf("intersection wrong at %d", i)
		}
		if diff.Has(i) != (even && !third) {
			t.Fatalf("difference wrong at %d", i)
		}
	}
	// Counts must be maintained by the bulk operations.
	if u.Len() != 67 || inter.Len() != 17 || diff.Len() != 33 {
		t.Fatalf("set op counts = %d/%d/%d, want 67/17/33", u.Len(), inter.Len(), diff.Len())
	}
	mustPanic(t, "universe mismatch", func() { a.UnionWith(NewEdgeSet(50)) })
}

func TestFull(t *testing.T) {
	s := Full(70)
	if s.Len() != 70 {
		t.Fatalf("Full(70).Len() = %d", s.Len())
	}
	for i := 0; i < 70; i++ {
		if !s.Has(i) {
			t.Fatalf("Full set missing %d", i)
		}
	}
	if s.Has(70) {
		t.Fatal("Full set contains out-of-universe element")
	}
	if Full(0).Len() != 0 {
		t.Fatal("Full(0) not empty")
	}
}

func TestEqual(t *testing.T) {
	a := NewEdgeSet(64)
	b := NewEdgeSet(64)
	if !a.Equal(b) {
		t.Fatal("two empty sets unequal")
	}
	a.Add(5)
	if a.Equal(b) {
		t.Fatal("different sets equal")
	}
	b.Add(5)
	if !a.Equal(b) {
		t.Fatal("same sets unequal")
	}
	if a.Equal(NewEdgeSet(65)) {
		t.Fatal("sets with different universes equal")
	}
}

// Property: Len always equals the number of elements visited by ForEach,
// under a random sequence of adds and removes.
func TestEdgeSetCountInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(300)
		s := NewEdgeSet(m)
		ref := make(map[int]bool)
		for op := 0; op < 200; op++ {
			i := rng.Intn(m)
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		visited := 0
		ok := true
		s.ForEach(func(i int) {
			visited++
			if !ref[i] {
				ok = false
			}
		})
		return ok && visited == len(ref) && s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnionWith/SubtractWith/IntersectWith agree with a reference
// map implementation.
func TestEdgeSetAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(200)
		a, b := NewEdgeSet(m), NewEdgeSet(m)
		ra, rb := map[int]bool{}, map[int]bool{}
		for i := 0; i < m; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
				ra[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
				rb[i] = true
			}
		}
		union := a.Clone()
		union.UnionWith(b)
		for i := 0; i < m; i++ {
			if union.Has(i) != (ra[i] || rb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
