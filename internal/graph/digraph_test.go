package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(4)
	i := g.AddEdge(0, 1)
	if i != 0 {
		t.Fatalf("first edge index = %d, want 0", i)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = false")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed edge must not be symmetric")
	}
	j := g.AddEdge(1, 0) // anti-parallel edge is distinct
	if j != 1 {
		t.Fatalf("anti-parallel edge index = %d, want 1", j)
	}
	if k := g.AddEdge(0, 1); k != 0 {
		t.Fatalf("duplicate directed edge returned %d, want 0", k)
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatal("degrees wrong")
	}
	mustPanic(t, "self loop", func() { g.AddEdge(2, 2) })
}

func TestDigraphInOut(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	in := g.In(2)
	if len(in) != 2 {
		t.Fatalf("In(2) has %d arcs, want 2", len(in))
	}
	sources := map[int]bool{}
	for _, a := range in {
		sources[a.To] = true
	}
	if !sources[0] || !sources[1] {
		t.Fatalf("In(2) sources = %v, want {0,1}", sources)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2 (vertex 2 has in-degree 2)", g.MaxDegree())
	}
}

func TestDigraphDistWithin(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 and shortcut 0 -> 3.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	short := g.AddEdge(0, 3)

	full := Full(g.M())
	if d := g.DistWithin(0, 3, full, -1); d != 1 {
		t.Fatalf("dist(0,3) = %d, want 1 via shortcut", d)
	}
	h := Full(g.M())
	h.Remove(short)
	if d := g.DistWithin(0, 3, h, -1); d != 3 {
		t.Fatalf("dist(0,3) without shortcut = %d, want 3", d)
	}
	if d := g.DistWithin(0, 3, h, 2); d != -1 {
		t.Fatalf("bounded dist = %d, want -1", d)
	}
	if d := g.DistWithin(3, 0, full, -1); d != -1 {
		t.Fatalf("reverse dist = %d, want -1 (directed)", d)
	}
}

func TestDigraphWeights(t *testing.T) {
	g := NewDigraph(3)
	a := g.AddEdge(0, 1)
	if g.Weight(a) != 1 {
		t.Fatal("default weight must be 1")
	}
	g.SetWeight(a, 0)
	if g.Weight(a) != 0 {
		t.Fatal("zero weights must be allowed (paper's weighted constructions use them)")
	}
	b := g.AddEdge(1, 2)
	if g.Weight(b) != 1 {
		t.Fatal("new edge default weight must be 1")
	}
	s := NewEdgeSet(g.M())
	s.Add(a)
	s.Add(b)
	if g.TotalWeight(s) != 1 {
		t.Fatalf("TotalWeight = %f, want 1", g.TotalWeight(s))
	}
}

func TestUnderlying(t *testing.T) {
	g := NewDigraph(3)
	e01 := g.AddEdge(0, 1)
	e10 := g.AddEdge(1, 0)
	e12 := g.AddEdge(1, 2)
	u, mapping := g.Underlying()
	if u.M() != 2 {
		t.Fatalf("underlying M() = %d, want 2 (anti-parallel collapse)", u.M())
	}
	if mapping[e01] != mapping[e10] {
		t.Fatal("anti-parallel edges must map to the same undirected edge")
	}
	if mapping[e12] == mapping[e01] {
		t.Fatal("distinct edges collapsed")
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(1, 2) {
		t.Fatal("underlying graph missing edges")
	}
}

func TestDigraphClone(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.SetWeight(0, 5)
	c := g.Clone()
	c.AddEdge(1, 2)
	c.SetWeight(0, 7)
	if g.M() != 1 || g.Weight(0) != 5 {
		t.Fatal("clone mutation leaked to original")
	}
}

// Property: in a random DAG-ish digraph, DistWithin(u,v) is -1 or at most
// n-1, and dist(u,u) is always 0.
func TestDigraphDistBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := NewDigraph(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		full := Full(g.M())
		for trial := 0; trial < 5; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			d := g.DistWithin(u, v, full, -1)
			if u == v && d != 0 {
				return false
			}
			if d != -1 && (d < 0 || d > n-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
