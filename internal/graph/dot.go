package graph

import (
	"fmt"
	"io"
)

// ToDOT writes g in Graphviz DOT format. Edges in highlight (may be nil)
// are drawn bold red — the conventional way to show a spanner inside its
// graph. Weighted graphs get weight labels.
func ToDOT(w io.Writer, g *Graph, highlight *EdgeSet) error {
	if _, err := fmt.Fprintln(w, "graph G {"); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(w, "  %d;\n", v); err != nil {
			return err
		}
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		attrs := ""
		if highlight != nil && highlight.Has(i) {
			attrs = ` [color=red, penwidth=2]`
		}
		if g.Weighted() {
			if attrs == "" {
				attrs = fmt.Sprintf(` [label="%g"]`, g.Weight(i))
			} else {
				attrs = fmt.Sprintf(` [color=red, penwidth=2, label="%g"]`, g.Weight(i))
			}
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d%s;\n", e.U, e.V, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DigraphToDOT writes d in Graphviz DOT format with the same highlighting
// conventions as ToDOT.
func DigraphToDOT(w io.Writer, d *Digraph, highlight *EdgeSet) error {
	if _, err := fmt.Fprintln(w, "digraph G {"); err != nil {
		return err
	}
	for v := 0; v < d.N(); v++ {
		if _, err := fmt.Fprintf(w, "  %d;\n", v); err != nil {
			return err
		}
	}
	for i := 0; i < d.M(); i++ {
		e := d.Edge(i)
		attrs := ""
		if highlight != nil && highlight.Has(i) {
			attrs = ` [color=red, penwidth=2]`
		}
		if d.Weighted() {
			if attrs == "" {
				attrs = fmt.Sprintf(` [label="%g"]`, d.Weight(i))
			} else {
				attrs = fmt.Sprintf(` [color=red, penwidth=2, label="%g"]`, d.Weight(i))
			}
		}
		if _, err := fmt.Fprintf(w, "  %d -> %d%s;\n", e.U, e.V, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
