package graph

import (
	"fmt"
	"math/bits"
)

// EdgeSet is a bitset over edge indices of a fixed universe size. It is the
// representation used for spanners, covers, and other edge subsets. The zero
// value is unusable; construct with NewEdgeSet.
type EdgeSet struct {
	words []uint64
	m     int // universe size
	count int
}

// NewEdgeSet returns an empty edge set over a universe of m edges.
func NewEdgeSet(m int) *EdgeSet {
	if m < 0 {
		panic("graph: negative edge universe")
	}
	return &EdgeSet{words: make([]uint64, (m+63)/64), m: m}
}

// Universe returns the universe size the set was created with.
func (s *EdgeSet) Universe() int { return s.m }

// Len returns the number of edges in the set.
func (s *EdgeSet) Len() int { return s.count }

// Has reports whether edge i is in the set.
func (s *EdgeSet) Has(i int) bool {
	if i < 0 || i >= s.m {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts edge i. It reports whether the set changed.
func (s *EdgeSet) Add(i int) bool {
	s.check(i)
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count++
	return true
}

// Remove deletes edge i. It reports whether the set changed.
func (s *EdgeSet) Remove(i int) bool {
	s.check(i)
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b == 0 {
		return false
	}
	s.words[w] &^= b
	s.count--
	return true
}

// Clone returns a deep copy of the set.
func (s *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{words: make([]uint64, len(s.words)), m: s.m, count: s.count}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every edge of other to s. The universes must match.
func (s *EdgeSet) UnionWith(other *EdgeSet) {
	if other.m != s.m {
		panic(fmt.Sprintf("graph: edge-set universe mismatch %d != %d", s.m, other.m))
	}
	count := 0
	for i := range s.words {
		s.words[i] |= other.words[i]
		count += bits.OnesCount64(s.words[i])
	}
	s.count = count
}

// IntersectWith removes from s every edge not in other.
func (s *EdgeSet) IntersectWith(other *EdgeSet) {
	if other.m != s.m {
		panic(fmt.Sprintf("graph: edge-set universe mismatch %d != %d", s.m, other.m))
	}
	count := 0
	for i := range s.words {
		s.words[i] &= other.words[i]
		count += bits.OnesCount64(s.words[i])
	}
	s.count = count
}

// SubtractWith removes from s every edge in other.
func (s *EdgeSet) SubtractWith(other *EdgeSet) {
	if other.m != s.m {
		panic(fmt.Sprintf("graph: edge-set universe mismatch %d != %d", s.m, other.m))
	}
	count := 0
	for i := range s.words {
		s.words[i] &^= other.words[i]
		count += bits.OnesCount64(s.words[i])
	}
	s.count = count
}

// Equal reports whether s and other contain the same edges.
func (s *EdgeSet) Equal(other *EdgeSet) bool {
	if other.m != s.m || other.count != s.count {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every edge in the set in increasing index order.
func (s *EdgeSet) ForEach(fn func(i int)) {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w<<6 + b)
			word &= word - 1
		}
	}
}

// Slice returns the edges in the set as a sorted slice of indices.
func (s *EdgeSet) Slice() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Full returns a set containing every edge of the universe m.
func Full(m int) *EdgeSet {
	s := NewEdgeSet(m)
	for i := 0; i < m; i++ {
		s.words[i>>6] |= 1 << (uint(i) & 63)
	}
	s.count = m
	return s
}

func (s *EdgeSet) check(i int) {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("graph: edge index %d out of universe [0,%d)", i, s.m))
	}
}
