package localmodel

import (
	"testing"
	"testing/quick"

	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func TestEpsilonSpannerValidAndNearOptimal(t *testing.T) {
	// Small instances where exact OPT is computable: the result must be a
	// valid k-spanner of cost <= (1+eps) * OPT.
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"clique8-k2", gen.Clique(8), 2},
		{"cycle7-k2", gen.Cycle(7), 2},
		{"bipartite-k2", gen.CompleteBipartite(3, 4), 2},
		{"gnp-k2", gen.ConnectedGNP(10, 0.35, 3), 2},
		{"gnp-k3", gen.ConnectedGNP(9, 0.35, 5), 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eps := 0.5
			res, err := EpsilonSpanner(c.g, Options{K: c.k, Eps: eps, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !span.IsKSpanner(c.g, res.Spanner, c.k) {
				t.Fatal("result is not a k-spanner")
			}
			_, opt, err := exact.MinSpanner(c.g, exact.SpannerOptions{K: c.k})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost > (1+eps)*opt+1e-9 {
				t.Fatalf("cost %f exceeds (1+ε)·OPT = %f", res.Cost, (1+eps)*opt)
			}
		})
	}
}

func TestEpsilonSpannerTightEps(t *testing.T) {
	// Very small eps forces near-optimality.
	g := gen.Clique(7)
	res, err := EpsilonSpanner(g, Options{K: 2, Eps: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1.01*opt+1e-9 {
		t.Fatalf("cost %f vs opt %f with eps=0.01", res.Cost, opt)
	}
}

func TestSequentialMatchesGuaranteeAnyOrder(t *testing.T) {
	// The guarantee is order-independent; the sequential natural order
	// must satisfy it too.
	g := gen.ConnectedGNP(9, 0.4, 7)
	eps := 0.3
	res, err := SequentialEpsilonSpanner(g, Options{K: 2, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid spanner")
	}
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > (1+eps)*opt+1e-9 {
		t.Fatalf("cost %f exceeds (1+ε)OPT %f", res.Cost, (1+eps)*opt)
	}
}

func TestEpsilonSpannerAccounting(t *testing.T) {
	g := gen.ConnectedGNP(12, 0.3, 4)
	res, err := EpsilonSpanner(g, Options{K: 2, Eps: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Colors < 1 {
		t.Fatal("decomposition reported no colors")
	}
	if res.Radius < 1 {
		t.Fatal("power radius must be >= 1")
	}
	if res.EstimatedRounds <= 0 {
		t.Fatal("round estimate missing")
	}
	if len(res.Steps) != g.N() {
		t.Fatalf("steps = %d, want one per vertex", len(res.Steps))
	}
	// Every vertex's chosen radius is bounded by the pigeonhole bound.
	bound := maxRadiusBound(g, 2, 0.5)
	for _, s := range res.Steps {
		if s.Radius > bound {
			t.Fatalf("vertex %d chose radius %d > bound %d", s.Vertex, s.Radius, bound)
		}
	}
}

func TestEpsilonSpannerWeighted(t *testing.T) {
	// The framework extends to weights: optimal sub-spanners come from the
	// weighted exact solver.
	g := gen.Clique(6)
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if e.U == 0 {
			g.SetWeight(i, 1)
		} else {
			g.SetWeight(i, 10)
		}
	}
	eps := 0.25
	res, err := EpsilonSpanner(g, Options{K: 2, Eps: eps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid weighted spanner")
	}
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > (1+eps)*opt+1e-9 {
		t.Fatalf("weighted cost %f exceeds (1+ε)OPT %f", res.Cost, (1+eps)*opt)
	}
}

func TestEpsilonSpannerOptionValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := EpsilonSpanner(g, Options{K: 0, Eps: 0.5}); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := EpsilonSpanner(g, Options{K: 2, Eps: 0}); err == nil {
		t.Fatal("eps=0 must error")
	}
	if _, err := EpsilonSpanner(g, Options{K: 2, Eps: -1}); err == nil {
		t.Fatal("negative eps must error")
	}
}

func TestEpsilonSpannerEmptyAndTiny(t *testing.T) {
	empty := graph.New(0)
	res, err := EpsilonSpanner(empty, Options{K: 2, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.Len() != 0 {
		t.Fatal("empty graph must give empty spanner")
	}
	p2 := gen.Path(2)
	res2, err := EpsilonSpanner(p2, Options{K: 2, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Spanner.Len() != 1 {
		t.Fatalf("P2: %d edges, want 1", res2.Spanner.Len())
	}
}

func TestEpsilonSpannerMaxRadiusOverride(t *testing.T) {
	// A caller-supplied radius cap must be respected and still yield a
	// valid spanner when generous enough.
	g := gen.Clique(7)
	res, err := EpsilonSpanner(g, Options{K: 2, Eps: 0.5, Seed: 1, MaxRadius: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 5 {
		t.Fatalf("radius = %d, want the override 5", res.Radius)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid spanner under radius override")
	}
}

func TestEpsilonSpannerStepsRecordAdds(t *testing.T) {
	g := gen.Clique(6)
	res, err := EpsilonSpanner(g, Options{K: 2, Eps: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Steps {
		total += s.Added
	}
	if total != res.Spanner.Len() {
		t.Fatalf("steps added %d edges, spanner has %d", total, res.Spanner.Len())
	}
}

// Property: the (1+eps) bound holds against exact OPT on random small
// graphs.
func TestEpsilonBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int((seed%4+4)%4)
		g := gen.ConnectedGNP(n, 0.35, seed)
		if g.M() > 16 {
			return true
		}
		const eps = 0.5
		res, err := EpsilonSpanner(g, Options{K: 2, Eps: eps, Seed: seed})
		if err != nil {
			return false
		}
		if !span.IsKSpanner(g, res.Spanner, 2) {
			return false
		}
		_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
		if err != nil {
			return false
		}
		return res.Cost <= (1+eps)*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
