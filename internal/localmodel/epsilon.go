// Package localmodel implements the paper's (1+ε)-approximation for
// minimum k-spanners in the LOCAL model (Section 6, Theorem 1.2), following
// the framework of Ghaffari, Kuhn and Maus [39].
//
// The sequential core processes vertices in a given order; vertex v_i finds
// the smallest radius r_i such that the optimal spanner of the uncovered
// edges in the ball B_{r_i+2k}(v_i) is at most (1+ε) times the optimum for
// B_{r_i}(v_i), then adds an optimal spanner for the larger ball. Because
// optima are bounded by n², the radius search terminates within
// O(k·log n / ε) steps, and distinct steps operate on balls that are
// 2k-separated, so their optimal sub-spanners charge to disjoint parts of
// the global optimum — yielding |H| ≤ (1+ε)|H*|.
//
// The distributed implementation runs the same process with the vertex
// order induced by a Linial-Saks network decomposition of G^r: vertices of
// the same color class are processed in parallel (their clusters are
// non-adjacent in G^r, hence further than any step's footprint apart), and
// each of the O(log n) color phases costs O(r + cluster diameter) rounds of
// neighborhood collection in the LOCAL model. The algorithm's local
// computations solve NP-hard spanner instances exactly, which the LOCAL
// model permits; this implementation calls the exact branch-and-bound
// solver, so it is meant for small inputs.
package localmodel

import (
	"errors"
	"fmt"
	"sort"

	"distspanner/internal/decomp"
	"distspanner/internal/exact"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

// Options configures EpsilonSpanner.
type Options struct {
	// K is the stretch; must be >= 1 (the paper treats k constant).
	K int
	// Eps is the approximation slack ε > 0.
	Eps float64
	// Seed drives the network decomposition.
	Seed int64
	// MaxRadius caps the ball-growing search; zero derives the bound
	// O(k log n / ε) from the instance (capped by n).
	MaxRadius int
}

// Step records one vertex's action, for diagnostics and the round
// accounting.
type Step struct {
	Vertex int
	Radius int
	Added  int // edges added to H at this step
}

// Result reports the spanner and the LOCAL-model accounting.
type Result struct {
	// Spanner is the constructed k-spanner.
	Spanner *graph.EdgeSet
	// Cost is its total weight (size when unweighted).
	Cost float64
	// Colors, WeakDiameter and Radius are the decomposition parameters of
	// G^Radius measured on this run.
	Colors       int
	WeakDiameter int
	Radius       int
	// EstimatedRounds is the LOCAL-model round count of the decomposition
	// simulation: for each of the O(log n) color phases, collecting and
	// redistributing the cluster neighborhoods costs
	// O(Radius · (WeakDiameter + 1)) rounds, plus the decomposition itself
	// (O(log² n) rounds on G^Radius, i.e. O(Radius·log² n) on G).
	EstimatedRounds int
	// Steps are the per-vertex ball-growing decisions in processing order.
	Steps []Step
}

// EpsilonSpanner computes a (1+ε)-approximate minimum k-spanner of g.
func EpsilonSpanner(g *graph.Graph, opts Options) (*Result, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("localmodel: stretch k=%d must be >= 1", opts.K)
	}
	if opts.Eps <= 0 {
		return nil, errors.New("localmodel: Eps must be positive")
	}
	n := g.N()
	if n == 0 {
		return &Result{Spanner: graph.NewEdgeSet(0)}, nil
	}

	// The footprint of one step is r_i + 4k; any r exceeding every r_i +
	// 4k works. Cap by n (ball growth saturates at the diameter).
	radius := opts.MaxRadius
	if radius <= 0 {
		radius = maxRadiusBound(g, opts.K, opts.Eps) + 4*opts.K + 1
		if radius > n {
			radius = n
		}
	}
	power := decomp.PowerGraph(g, radius)
	dec := decomp.LinialSaks(power, opts.Seed)

	// Processing order: lexicographically by (color, id) — the order the
	// distributed algorithm realizes, colors sequentially and clusters of
	// one color in parallel.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if dec.Color[va] != dec.Color[vb] {
			return dec.Color[va] < dec.Color[vb]
		}
		return va < vb
	})

	res, err := sequential(g, opts, order)
	if err != nil {
		return nil, err
	}
	res.Colors = dec.NumColors
	res.WeakDiameter = dec.WeakDiameter(power)
	res.Radius = radius
	// Round accounting: decomposition on G^radius costs O(log² n) rounds
	// there, each simulated by radius rounds on G; then each color phase
	// collects cluster neighborhoods of extent radius·(weak diameter + 2).
	logn := ilog2(n) + 1
	res.EstimatedRounds = radius*logn*logn + res.Colors*radius*(res.WeakDiameter+2)
	return res, nil
}

// SequentialEpsilonSpanner runs the sequential core with the natural order
// 0..n-1 (the paper's sequential description, no decomposition). Exposed
// for testing and for measuring the order's irrelevance to the guarantee.
func SequentialEpsilonSpanner(g *graph.Graph, opts Options) (*Result, error) {
	if opts.K < 1 || opts.Eps <= 0 {
		return nil, errors.New("localmodel: need k >= 1 and Eps > 0")
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	return sequential(g, opts, order)
}

func sequential(g *graph.Graph, opts Options, order []int) (*Result, error) {
	k, eps := opts.K, opts.Eps
	H := graph.NewEdgeSet(g.M())
	covered := graph.NewEdgeSet(g.M())
	res := &Result{}

	uncoveredInBall := func(v, d int) *graph.EdgeSet {
		ball := g.Ball(v, d)
		inBall := make(map[int]bool, len(ball))
		for _, u := range ball {
			inBall[u] = true
		}
		target := graph.NewEdgeSet(g.M())
		for i := 0; i < g.M(); i++ {
			if covered.Has(i) {
				continue
			}
			e := g.Edge(i)
			if inBall[e.U] && inBall[e.V] {
				target.Add(i)
			}
		}
		return target
	}

	// gOpt(v, d) = cost of an optimal spanner of the uncovered edges in
	// B_d(v); the spanner may use any edges of G (covered or not).
	gOpt := func(v, d int) (float64, *graph.EdgeSet, error) {
		target := uncoveredInBall(v, d)
		if target.Len() == 0 {
			return 0, graph.NewEdgeSet(g.M()), nil
		}
		sol, cost, err := exact.MinSpanner(g, exact.SpannerOptions{K: k, Target: target})
		if err != nil {
			return 0, nil, err
		}
		return cost, sol, nil
	}

	maxR := opts.MaxRadius
	if maxR <= 0 {
		maxR = g.N()
	}
	for _, v := range order {
		// Find the smallest r with g(v, r+2k) <= (1+eps) * g(v, r).
		var chosen *graph.EdgeSet
		chosenR := -1
		gInner, _, err := gOpt(v, 0) // = 0 edges in B_0
		if err != nil {
			return nil, err
		}
		for r := 0; r <= maxR; r++ {
			gOuter, solOuter, err := gOpt(v, r+2*k)
			if err != nil {
				return nil, err
			}
			if gOuter <= (1+eps)*gInner {
				chosen, chosenR = solOuter, r
				break
			}
			gInner, _, err = gOpt(v, r+1)
			if err != nil {
				return nil, err
			}
		}
		if chosenR == -1 {
			return nil, fmt.Errorf("localmodel: ball growth did not converge at vertex %d", v)
		}
		added := 0
		chosen.ForEach(func(i int) {
			if H.Add(i) {
				added++
			}
		})
		// Mark everything now covered by H.
		for i := 0; i < g.M(); i++ {
			if !covered.Has(i) && span.Covered(g, H, i, k) {
				covered.Add(i)
			}
		}
		res.Steps = append(res.Steps, Step{Vertex: v, Radius: chosenR, Added: added})
	}
	res.Spanner = H
	res.Cost = g.TotalWeight(H)
	return res, nil
}

// maxRadiusBound returns the pigeonhole bound on any r_i: the optimum is at
// most m, so the condition g(v, r+2k) > (1+ε)·g(v, r) can fail at most
// log_{1+ε}(m) times along the nested-ball chain, each failure advancing
// the radius by at most 2k.
func maxRadiusBound(g *graph.Graph, k int, eps float64) int {
	m := float64(g.M())
	if m < 2 {
		m = 2
	}
	steps := 1
	x := 1.0
	for x < m {
		x *= 1 + eps
		steps++
	}
	return 2 * k * steps
}

func ilog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
