// Package gen provides deterministic, seeded graph generators for the
// workloads used throughout the experiments: Erdős–Rényi random graphs,
// bipartite families (including the complete bipartite graphs that make
// 2-spanners quadratic), hypercubes, grids, and weighted/directed variants.
//
// All generators are deterministic functions of their parameters and seed.
package gen

import (
	"fmt"
	"math/rand"

	"distspanner/internal/graph"
)

// GNP returns an Erdős–Rényi random graph G(n, p).
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ConnectedGNP returns G(n, p) conditioned on connectivity: a random
// spanning-tree backbone is inserted first, then each remaining pair is
// added independently with probability p. Useful because spanner problems
// are defined on connected graphs.
func ConnectedGNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each vertex to a random earlier vertex in the permutation:
		// a uniform random recursive tree on the permuted labels.
		j := rng.Intn(i)
		g.AddEdge(perm[i], perm[j])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: side A is vertices [0,a), side B is
// [a, a+b). Complete bipartite graphs are the canonical worst case for
// 2-spanner sparsity (any 2-spanner is the whole graph minus nothing
// locally shortcuttable), which motivates the approximation problem.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.AddEdge(u, a+v)
		}
	}
	return g
}

// RandomBipartite returns a random bipartite graph with sides a and b and
// edge probability p, connected sides not guaranteed.
func RandomBipartite(a, b int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, a+v)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices. The
// hypercube is the classic synchronizer topology ([57] in the paper).
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("gen: hypercube dimension %d out of range", d))
	}
	n := 1 << uint(d)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << uint(bit))
			if v < u {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs at least 3 vertices")
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PlantedStars returns a graph consisting of c dense "communities": each
// community is a hub vertex adjacent to s satellites, with the satellites
// of one community sparsely interconnected (probability q) and consecutive
// hubs chained together for connectivity. This family has very dense stars,
// the structure the core algorithm exploits.
func PlantedStars(c, s int, q float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := c * (s + 1)
	g := graph.New(n)
	hub := func(i int) int { return i * (s + 1) }
	for i := 0; i < c; i++ {
		h := hub(i)
		for j := 1; j <= s; j++ {
			g.AddEdge(h, h+j)
		}
		for j := 1; j <= s; j++ {
			for k := j + 1; k <= s; k++ {
				if rng.Float64() < q {
					g.AddEdge(h+j, h+k)
				}
			}
		}
		if i+1 < c {
			g.AddEdge(h, hub(i+1))
		}
	}
	return g
}

// RandomDigraph returns a random simple directed graph where each ordered
// pair (u, v) is an edge independently with probability p.
func RandomDigraph(n int, p float64, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// OrientRandomly returns a digraph obtained from g by orienting each
// undirected edge in a uniformly random direction, plus making a fraction
// twoWay of the edges bidirected.
func OrientRandomly(g *graph.Graph, twoWay float64, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	d := graph.NewDigraph(g.N())
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		u, v := e.U, e.V
		if rng.Intn(2) == 0 {
			u, v = v, u
		}
		d.AddEdge(u, v)
		if rng.Float64() < twoWay {
			d.AddEdge(v, u)
		}
	}
	return d
}

// RandomWeights assigns each edge of g an independent weight drawn
// uniformly from [lo, hi]. It mutates g and returns it for chaining.
func RandomWeights(g *graph.Graph, lo, hi float64, seed int64) *graph.Graph {
	if lo < 0 || hi < lo {
		panic("gen: invalid weight range")
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < g.M(); i++ {
		g.SetWeight(i, lo+rng.Float64()*(hi-lo))
	}
	return g
}

// ClientServerSplit partitions the edges of g into client and server sets.
// Each edge is a client with probability pc, a server with probability ps,
// independently, but every edge belongs to at least one side (an edge that
// would be neither is assigned to both, keeping the instance meaningful).
// It returns the two edge sets.
func ClientServerSplit(g *graph.Graph, pc, ps float64, seed int64) (clients, servers *graph.EdgeSet) {
	rng := rand.New(rand.NewSource(seed))
	clients = graph.NewEdgeSet(g.M())
	servers = graph.NewEdgeSet(g.M())
	for i := 0; i < g.M(); i++ {
		c := rng.Float64() < pc
		s := rng.Float64() < ps
		if !c && !s {
			c, s = true, true
		}
		if c {
			clients.Add(i)
		}
		if s {
			servers.Add(i)
		}
	}
	return clients, servers
}
