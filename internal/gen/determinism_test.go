package gen

import (
	"fmt"
	"hash/fnv"
	"testing"

	"distspanner/internal/graph"
)

// edgeHash fingerprints a graph's exact edge list in insertion order —
// the identity the scenario layer's canonical graph hash, sweep seeds,
// and trace digests all assume is a pure function of (family, params,
// seed).
func edgeHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	for i := 0; i < g.M(); i++ {
		fmt.Fprintf(h, "%v,", g.Edge(i))
	}
	return h.Sum64()
}

// TestPreferentialAttachmentDeterminism pins the fix for a real
// nondeterminism bug spanlint's detmap analyzer caught: the attachment
// loop ranged over the per-vertex target set map, so edge-insertion order
// — and, through the endpoint pool, every later degree-biased draw —
// depended on map iteration order. Identical (n, m, seed) produced
// structurally different graphs within one process. Repeated generation
// must now agree exactly.
func TestPreferentialAttachmentDeterminism(t *testing.T) {
	want := edgeHash(PreferentialAttachment(200, 3, 42))
	for i := 0; i < 10; i++ {
		if got := edgeHash(PreferentialAttachment(200, 3, 42)); got != want {
			t.Fatalf("iteration %d: edge hash %x, want %x — generator output depends on map iteration order", i, got, want)
		}
	}
}
