package gen

import (
	"testing"
	"testing/quick"
)

func TestGeometric(t *testing.T) {
	g := Geometric(80, 0.25, 3)
	if g.N() != 80 {
		t.Fatal("wrong vertex count")
	}
	if g.M() == 0 {
		t.Fatal("radius 0.25 on 80 points must produce edges")
	}
	// Radius 0 produces no edges; radius sqrt(2) produces a clique.
	if Geometric(20, 0, 1).M() != 0 {
		t.Fatal("radius 0 must be edgeless")
	}
	if g2 := Geometric(20, 1.5, 1); g2.M() != 190 {
		t.Fatalf("radius > sqrt(2) must be complete, got %d edges", g2.M())
	}
	a, b := Geometric(30, 0.3, 7), Geometric(30, 0.3, 7)
	if a.M() != b.M() {
		t.Fatal("not deterministic per seed")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(100, 3, 5)
	if g.N() != 100 {
		t.Fatal("wrong vertex count")
	}
	// Vertices beyond the m-th attach to exactly m targets; earlier ones
	// to fewer. Edge count: sum over v of min(v, m).
	want := 0
	for v := 1; v < 100; v++ {
		if v < 3 {
			want += v
		} else {
			want += 3
		}
	}
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if !g.Connected() {
		t.Fatal("preferential attachment graph must be connected")
	}
	// Heavy tail: some vertex should have degree well above m.
	if g.MaxDegree() < 6 {
		t.Fatalf("max degree %d suspiciously small for BA(100,3)", g.MaxDegree())
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 {
		t.Fatalf("N = %d, want 20", g.N())
	}
	// Tree: n-1 edges, connected.
	if g.M() != g.N()-1 || !g.Connected() {
		t.Fatal("caterpillar must be a tree")
	}
}

func TestLollipopChain(t *testing.T) {
	g := LollipopChain(3, 5, 4)
	if !g.Connected() {
		t.Fatal("lollipop chain disconnected")
	}
	// Each clique contributes C(5,2)=10 edges; two bridges of 4 edges.
	if g.M() != 3*10+2*4 {
		t.Fatalf("M = %d, want 38", g.M())
	}
	mustPanicExtra(t, func() { LollipopChain(0, 5, 1) })
}

func TestExpectedGeometricDegree(t *testing.T) {
	if d := ExpectedGeometricDegree(100, 0.1); d < 3 || d > 3.2 {
		t.Fatalf("expected degree = %f, want ~3.14", d)
	}
}

// Property: preferential attachment graphs are always simple and
// connected.
func TestPreferentialAttachmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int((seed%40+40)%40)
		g := PreferentialAttachment(n, 2, seed)
		return g.Connected() && g.M() <= 2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mustPanicExtra(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
