package gen

import (
	"testing"
	"testing/quick"
)

func TestGNPDeterministic(t *testing.T) {
	a := GNP(30, 0.3, 7)
	b := GNP(30, 0.3, 7)
	if a.M() != b.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.M(), b.M())
	}
	for i := 0; i < a.M(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs between identical seeds", i)
		}
	}
	c := GNP(30, 0.3, 8)
	if a.M() == c.M() {
		same := true
		for i := 0; i < a.M(); i++ {
			if a.Edge(i) != c.Edge(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(10, 0, 1); g.M() != 0 {
		t.Fatalf("G(n,0) has %d edges", g.M())
	}
	if g := GNP(10, 1, 1); g.M() != 45 {
		t.Fatalf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestConnectedGNP(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := ConnectedGNP(40, 0.02, seed)
		if !g.Connected() {
			t.Fatalf("ConnectedGNP produced disconnected graph at seed %d", seed)
		}
		if g.M() < 39 {
			t.Fatalf("connected graph on 40 vertices has only %d edges", g.M())
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): n=%d m=%d, want 7, 12", g.N(), g.M())
	}
	// No edges within a side.
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("edge inside side A: {%d,%d}", u, v)
			}
		}
	}
	for u := 3; u < 7; u++ {
		for v := u + 1; v < 7; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("edge inside side B: {%d,%d}", u, v)
			}
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatalf("Q4 has %d vertices, want 16", g.N())
	}
	if g.M() != 32 { // d * 2^(d-1)
		t.Fatalf("Q4 has %d edges, want 32", g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 vertex %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("hypercube disconnected")
	}
	if Hypercube(0).N() != 1 {
		t.Fatal("Q0 must be a single vertex")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 5)
	if g.N() != 15 {
		t.Fatalf("grid N = %d, want 15", g.N())
	}
	// Edges: 3*4 horizontal + 2*5 vertical = 22.
	if g.M() != 22 {
		t.Fatalf("grid M = %d, want 22", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid max degree %d, want 4", g.MaxDegree())
	}
}

func TestSmallFamilies(t *testing.T) {
	if g := Path(5); g.M() != 4 || !g.Connected() {
		t.Fatal("path wrong")
	}
	if g := Cycle(5); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatal("cycle wrong")
	}
	if g := Star(6); g.M() != 5 || g.Degree(0) != 5 {
		t.Fatal("star wrong")
	}
	if g := Clique(5); g.M() != 10 {
		t.Fatal("clique wrong")
	}
}

func TestPlantedStars(t *testing.T) {
	g := PlantedStars(4, 6, 0.3, 3)
	if g.N() != 28 {
		t.Fatalf("planted stars N = %d, want 28", g.N())
	}
	if !g.Connected() {
		t.Fatal("planted stars disconnected (hub chain must connect)")
	}
	// Each hub has degree >= s.
	for i := 0; i < 4; i++ {
		if g.Degree(i*7) < 6 {
			t.Fatalf("hub %d has degree %d < 6", i*7, g.Degree(i*7))
		}
	}
}

func TestRandomDigraph(t *testing.T) {
	g := RandomDigraph(20, 0.5, 11)
	if g.N() != 20 {
		t.Fatal("wrong vertex count")
	}
	if g.M() == 0 || g.M() >= 380 {
		t.Fatalf("implausible edge count %d", g.M())
	}
	h := RandomDigraph(20, 0.5, 11)
	if g.M() != h.M() {
		t.Fatal("same seed produced different digraphs")
	}
}

func TestOrientRandomly(t *testing.T) {
	g := Clique(6)
	d := OrientRandomly(g, 0, 5)
	if d.M() != g.M() {
		t.Fatalf("one-way orientation M = %d, want %d", d.M(), g.M())
	}
	d2 := OrientRandomly(g, 1, 5)
	if d2.M() != 2*g.M() {
		t.Fatalf("two-way orientation M = %d, want %d", d2.M(), 2*g.M())
	}
}

func TestRandomWeights(t *testing.T) {
	g := RandomWeights(GNP(15, 0.5, 2), 1, 10, 3)
	if !g.Weighted() {
		t.Fatal("graph not weighted after RandomWeights")
	}
	for i := 0; i < g.M(); i++ {
		w := g.Weight(i)
		if w < 1 || w > 10 {
			t.Fatalf("weight %f outside [1,10]", w)
		}
	}
}

func TestClientServerSplitCoversAllEdges(t *testing.T) {
	g := GNP(25, 0.4, 9)
	clients, servers := ClientServerSplit(g, 0.4, 0.4, 1)
	for i := 0; i < g.M(); i++ {
		if !clients.Has(i) && !servers.Has(i) {
			t.Fatalf("edge %d is neither client nor server", i)
		}
	}
}

// Property: G(n,p) never produces self-loops, duplicates, or out-of-range
// vertices, and edge count is at most C(n,2).
func TestGNPSimpleProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%29+29)%29
		g := GNP(n, 0.4, seed)
		if g.M() > n*(n-1)/2 {
			return false
		}
		seen := map[[2]int]bool{}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if e.U < 0 || e.V >= n || e.U >= e.V {
				return false
			}
			key := [2]int{e.U, e.V}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipartite(t *testing.T) {
	g := RandomBipartite(5, 7, 0.5, 3)
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if (e.U < 5) == (e.V < 5) {
			t.Fatalf("edge %v inside one side", e)
		}
	}
	if RandomBipartite(4, 4, 1, 1).M() != 16 {
		t.Fatal("p=1 must produce the complete bipartite graph")
	}
}
