package gen

import (
	"math"
	"testing"
)

func graphsEqual(t *testing.T, a, b interface {
	N() int
	M() int
}) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("graphs differ: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
}

func TestRingWithChordsStructure(t *testing.T) {
	const n, chords = 128, 2
	g := RingWithChords(n, chords, 7)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("ring-with-chords must be connected (it contains the ring)")
	}
	// Ring edges are always present.
	for v := 0; v < n; v++ {
		if !g.HasEdge(v, (v+1)%n) {
			t.Fatalf("missing ring edge %d-%d", v, (v+1)%n)
		}
	}
	// Each vertex initiated up to `chords` chords, so m is close to
	// n + n*chords (rejection can only lose a handful of chords).
	wantM := n + n*chords
	if g.M() > wantM || g.M() < wantM-n/8 {
		t.Fatalf("m = %d, want close to %d", g.M(), wantM)
	}
	// Degrees concentrate around 2 + 2*chords.
	avg := g.AvgDegree()
	want := float64(2 + 2*chords)
	if math.Abs(avg-want) > 0.5 {
		t.Fatalf("avg degree %.2f, want ~%.1f", avg, want)
	}
}

func TestRingWithChordsDeterministic(t *testing.T) {
	a := RingWithChords(64, 3, 11)
	b := RingWithChords(64, 3, 11)
	graphsEqual(t, a, b)
	for i := 0; i < a.M(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edge(i), b.Edge(i))
		}
	}
	c := RingWithChords(64, 3, 12)
	if c.M() == a.M() {
		same := true
		for i := 0; i < a.M(); i++ {
			if a.Edge(i) != c.Edge(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical chord sets")
		}
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	const n, k = 120, 4
	g := SBM(n, k, 0.6, 0.02, 5)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Count intra- vs inter-community edges and pair counts.
	intraPairs, interPairs := 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if Community(n, k, u) == Community(n, k, v) {
				intraPairs++
			} else {
				interPairs++
			}
		}
	}
	intra, inter := 0, 0
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if Community(n, k, e.U) == Community(n, k, e.V) {
			intra++
		} else {
			inter++
		}
	}
	intraDensity := float64(intra) / float64(intraPairs)
	interDensity := float64(inter) / float64(interPairs)
	if intraDensity < 0.45 || intraDensity > 0.75 {
		t.Fatalf("intra density %.3f far from pin=0.6", intraDensity)
	}
	if interDensity > 0.06 {
		t.Fatalf("inter density %.3f far from pout=0.02", interDensity)
	}
	if intraDensity < 5*interDensity {
		t.Fatalf("no community structure: intra %.3f vs inter %.3f", intraDensity, interDensity)
	}
}

func TestSBMCommunitySizes(t *testing.T) {
	// 10 vertices in 3 communities: blocks of 4, 3, 3.
	sizes := map[int]int{}
	for v := 0; v < 10; v++ {
		c := Community(10, 3, v)
		if c < 0 || c >= 3 {
			t.Fatalf("community %d out of range", c)
		}
		sizes[c]++
	}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("block sizes %v, want 4/3/3", sizes)
	}
	// Blocks are contiguous: community is non-decreasing in v.
	prev := 0
	for v := 0; v < 10; v++ {
		c := Community(10, 3, v)
		if c < prev {
			t.Fatalf("community not contiguous at v=%d", v)
		}
		prev = c
	}
}

func TestSBMDeterministicAndConnected(t *testing.T) {
	a := SBM(80, 4, 0.5, 0.05, 3)
	b := SBM(80, 4, 0.5, 0.05, 3)
	graphsEqual(t, a, b)
	for i := 0; i < a.M(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
	// At these densities every block is dense and blocks are bridged by
	// cross edges w.h.p.; with the fixed seed this is a deterministic fact.
	if !a.Connected() {
		t.Fatal("SBM(80,4,0.5,0.05,3) should be connected")
	}
}

func TestWeightedGeometric(t *testing.T) {
	const n, radius = 100, 0.25
	g := WeightedGeometric(n, radius, 9)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 {
		t.Fatal("no edges at radius 0.25")
	}
	if !g.Weighted() {
		t.Fatal("weighted-geometric graph must carry weights")
	}
	for i := 0; i < g.M(); i++ {
		w := g.Weight(i)
		if w <= 0 || w > radius+1e-12 {
			t.Fatalf("edge %d weight %g outside (0, radius]", i, w)
		}
	}
	// Same seed: identical skeleton and weights. The skeleton also matches
	// the unweighted Geometric generator.
	h := WeightedGeometric(n, radius, 9)
	graphsEqual(t, g, h)
	for i := 0; i < g.M(); i++ {
		if g.Edge(i) != h.Edge(i) || g.Weight(i) != h.Weight(i) {
			t.Fatalf("edge %d differs under fixed seed", i)
		}
	}
	u := Geometric(n, radius, 9)
	graphsEqual(t, g, u)
	for i := 0; i < g.M(); i++ {
		if g.Edge(i) != u.Edge(i) {
			t.Fatalf("skeleton differs from Geometric at edge %d", i)
		}
	}
	// Expected-degree sanity: average degree within a factor-2 band of the
	// boundary-free estimate n·π·r².
	exp := ExpectedGeometricDegree(n, radius)
	if avg := g.AvgDegree(); avg < exp/2 || avg > 2*exp {
		t.Fatalf("avg degree %.2f vs expected %.2f", avg, exp)
	}
}
