package gen

import (
	"math"
	"math/rand"
	"sort"

	"distspanner/internal/graph"
)

// Geometric returns a random geometric graph: n points uniform in the unit
// square, edges between pairs at Euclidean distance at most radius. The
// standard model for wireless/sensor topologies (the MDS workload).
func Geometric(n int, radius float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := graph.New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PreferentialAttachment returns a Barabási-Albert graph: vertices arrive
// one by one, each attaching to m distinct existing vertices chosen with
// probability proportional to their degree (plus one). Produces the
// heavy-tailed degree distributions where dense stars — the core
// algorithm's prey — are abundant.
func PreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		panic("gen: attachment degree must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// Repeated-endpoint list: each vertex appears once per incident edge
	// endpoint plus once for smoothing.
	var pool []int
	pool = append(pool, 0)
	for v := 1; v < n; v++ {
		targets := make(map[int]bool)
		want := m
		if v < m {
			want = v
		}
		for len(targets) < want {
			targets[pool[rng.Intn(len(pool))]] = true
		}
		// Attach in sorted target order: ranging the map directly made
		// edge-insertion order — and, through the endpoint pool, every
		// later attachment choice — depend on map iteration order, so
		// the same (n, m, seed) generated structurally different graphs
		// run to run (caught by spanlint's detmap).
		chosen := make([]int, 0, len(targets))
		for u := range targets {
			chosen = append(chosen, u)
		}
		sort.Ints(chosen)
		for _, u := range chosen {
			g.AddEdge(v, u)
			pool = append(pool, u)
		}
		for i := 0; i < want; i++ {
			pool = append(pool, v)
		}
		if want == 0 {
			pool = append(pool, v)
		}
	}
	return g
}

// Caterpillar returns a path of length spineLen with legs leaves attached
// to every spine vertex: a tree whose 2-spanner is itself (trees have no
// 2-paths around any edge), useful as a no-op workload.
func Caterpillar(spineLen, legs int) *graph.Graph {
	n := spineLen * (legs + 1)
	g := graph.New(n)
	spine := func(i int) int { return i * (legs + 1) }
	for i := 0; i < spineLen; i++ {
		if i+1 < spineLen {
			g.AddEdge(spine(i), spine(i+1))
		}
		for l := 1; l <= legs; l++ {
			g.AddEdge(spine(i), spine(i)+l)
		}
	}
	return g
}

// LollipopChain returns c cliques of size s connected in a chain by paths
// of length bridge: a family mixing very dense regions (where stars pay
// off) with long sparse stretches (where nothing is 2-spannable).
func LollipopChain(c, s, bridge int) *graph.Graph {
	if c < 1 || s < 2 || bridge < 1 {
		panic("gen: need c >= 1, s >= 2, bridge >= 1")
	}
	n := c*s + (c-1)*(bridge-1)
	g := graph.New(n)
	cliqueStart := func(i int) int { return i * (s + bridge - 1) }
	for i := 0; i < c; i++ {
		base := cliqueStart(i)
		for a := 0; a < s; a++ {
			for b := a + 1; b < s; b++ {
				g.AddEdge(base+a, base+b)
			}
		}
		if i+1 < c {
			prev := base + s - 1
			for t := 0; t < bridge-1; t++ {
				g.AddEdge(prev, base+s+t)
				prev = base + s + t
			}
			g.AddEdge(prev, cliqueStart(i+1))
		}
	}
	return g
}

// ExpectedGeometricDegree returns the expected degree n·π·r² (boundary
// effects ignored), a sizing helper for Geometric workloads.
func ExpectedGeometricDegree(n int, radius float64) float64 {
	return float64(n) * math.Pi * radius * radius
}
