package gen

import (
	"math"
	"math/rand"

	"distspanner/internal/graph"
)

// RingWithChords returns an expander-style graph: the cycle on n vertices
// plus, for each vertex, chords random long-range chords to uniformly
// chosen non-adjacent vertices. The ring guarantees connectivity while the
// random chords push the spectral gap toward that of a random regular
// graph, giving the low-diameter / no-dense-star regime that stresses the
// round complexity of the spanner algorithms rather than their star rule.
func RingWithChords(n, chords int, seed int64) *graph.Graph {
	if n < 3 {
		panic("gen: ring needs at least 3 vertices")
	}
	if chords < 0 {
		panic("gen: chord count must be >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	g := Cycle(n)
	for v := 0; v < n; v++ {
		for c := 0; c < chords; c++ {
			// A few rejections suffice on all but tiny rings; give up
			// rather than loop forever when the vertex is saturated.
			for attempt := 0; attempt < 32; attempt++ {
				u := rng.Intn(n)
				if u != v && !g.HasEdge(v, u) {
					g.AddEdge(v, u)
					break
				}
			}
		}
	}
	return g
}

// SBM returns a stochastic-block-model graph: n vertices split into
// communities contiguous equal blocks (the remainder spread over the first
// blocks), with each intra-community pair joined with probability pin and
// each cross-community pair with probability pout. With pin >> pout this
// plants the dense-community structure the 2-spanner algorithm shortcuts.
// Community(n, communities, v) recovers a vertex's block.
func SBM(n, communities int, pin, pout float64, seed int64) *graph.Graph {
	if communities < 1 || communities > n {
		panic("gen: community count out of range")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		cu := Community(n, communities, u)
		for v := u + 1; v < n; v++ {
			p := pout
			if cu == Community(n, communities, v) {
				p = pin
			}
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Community returns the SBM block of vertex v when n vertices are split
// into communities contiguous near-equal blocks: the first n%communities
// blocks get one extra vertex.
func Community(n, communities, v int) int {
	base := n / communities
	extra := n % communities
	// The first `extra` blocks have size base+1.
	if v < extra*(base+1) {
		return v / (base + 1)
	}
	return extra + (v-extra*(base+1))/base
}

// WeightedGeometric returns a random geometric graph on n uniform points
// in the unit square with connection radius radius, where every edge is
// weighted by its Euclidean length (clamped away from zero so weighted
// spanner cost ratios stay finite). It is the natural weighted workload
// for the Theorem 4.12 algorithm: weights correlate with the topology
// instead of being independent noise.
func WeightedGeometric(n int, radius float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := graph.New(n)
	r2 := radius * radius
	type we struct {
		idx int
		w   float64
	}
	var ws []we
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			d2 := dx*dx + dy*dy
			if d2 <= r2 {
				i := g.AddEdge(u, v)
				ws = append(ws, we{i, math.Max(math.Sqrt(d2), 1e-9)})
			}
		}
	}
	// Weights are set after all AddEdge calls so the unweighted skeleton
	// is identical to Geometric(n, radius, seed).
	for _, e := range ws {
		g.SetWeight(e.idx, e.w)
	}
	return g
}
