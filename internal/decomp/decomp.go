// Package decomp provides the network-decomposition substrate used by the
// paper's (1+ε)-approximation algorithm (Section 6): the randomized
// low-diameter decomposition of Linial and Saks [52], which partitions a
// graph into clusters of weak diameter O(log n) colored with O(log n)
// colors w.h.p., plus power-graph construction (the algorithm decomposes
// G^r for r = O(log n / ε)).
package decomp

import (
	"math"
	"math/rand"

	"distspanner/internal/graph"
)

// Decomposition is a clustering of the vertices with a proper coloring of
// the cluster graph: clusters of the same color are non-adjacent (in the
// graph that was decomposed), so they can act in parallel.
type Decomposition struct {
	// Cluster[v] is the id of v's cluster (the id of the vertex that
	// captured it).
	Cluster []int
	// Color[v] is the phase in which v was clustered; clusters of equal
	// color are non-adjacent.
	Color []int
	// NumColors is 1 + the maximum color.
	NumColors int
}

// Clusters returns the vertex sets of the clusters, keyed by cluster id.
func (d *Decomposition) Clusters() map[int][]int {
	out := make(map[int][]int)
	for v, c := range d.Cluster {
		out[c] = append(out[c], v)
	}
	return out
}

// WeakDiameter returns the maximum, over clusters, of the largest distance
// in g between two vertices of the same cluster (distances measured in the
// whole graph: the Linial-Saks guarantee is weak diameter). Unreachable
// pairs inside a cluster yield -1.
func (d *Decomposition) WeakDiameter(g *graph.Graph) int {
	max := 0
	for _, members := range d.Clusters() {
		for _, v := range members {
			dist := g.BFS(v)
			for _, u := range members {
				if dist[u] == -1 {
					return -1
				}
				if dist[u] > max {
					max = dist[u]
				}
			}
		}
	}
	return max
}

// PowerGraph returns G^r: same vertices, an edge between every pair at hop
// distance between 1 and r in g.
func PowerGraph(g *graph.Graph, r int) *graph.Graph {
	if r < 1 {
		panic("decomp: power-graph radius must be >= 1")
	}
	p := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Ball(v, r) {
			if u > v {
				p.AddEdge(v, u)
			}
		}
	}
	return p
}

// LinialSaks computes a randomized Linial-Saks decomposition of g. Each
// phase, every remaining vertex draws a radius from a geometric
// distribution (p = 1/2) truncated at O(log n); vertices are captured by
// the highest-id vertex whose ball covers them, and interior vertices
// (strictly inside the ball) are clustered with this phase's color. With
// high probability both the number of phases (colors) and every cluster's
// weak diameter are O(log n).
func LinialSaks(g *graph.Graph, seed int64) *Decomposition {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	d := &Decomposition{
		Cluster: make([]int, n),
		Color:   make([]int, n),
	}
	for v := range d.Cluster {
		d.Cluster[v] = -1
		d.Color[v] = -1
	}
	if n == 0 {
		return d
	}
	maxRadius := 2*int(math.Ceil(math.Log2(float64(n+1)))) + 1
	remaining := make([]bool, n)
	left := n
	for v := range remaining {
		remaining[v] = true
	}
	maxPhases := 50 + 10*int(math.Ceil(math.Log2(float64(n+1))))
	phase := 0
	for ; left > 0 && phase < maxPhases; phase++ {
		// Draw truncated geometric radii.
		radius := make([]int, n)
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			r := 0
			for r < maxRadius && rng.Intn(2) == 0 {
				r++
			}
			radius[v] = r
		}
		// For every remaining vertex, find its capturing candidate: the
		// highest-id remaining vertex whose ball (in the remaining-induced
		// subgraph) covers it, together with the distance to it.
		captor := make([]int, n)
		capDist := make([]int, n)
		for v := range captor {
			captor[v] = -1
		}
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			for u, du := range ballDistances(g, v, radius[v], remaining) {
				if captor[u] < v || captor[u] == -1 {
					captor[u] = v
					capDist[u] = du
				}
			}
		}
		// Strictly interior vertices join this phase's clusters. Adjacent
		// interior vertices necessarily share a captor (the max-id rule),
		// which is what makes same-color clusters non-adjacent.
		for u := 0; u < n; u++ {
			if !remaining[u] || captor[u] == -1 {
				continue
			}
			if capDist[u] < radius[captor[u]] {
				d.Cluster[u] = captor[u]
				d.Color[u] = phase
			}
		}
		for u := 0; u < n; u++ {
			if remaining[u] && d.Cluster[u] != -1 {
				remaining[u] = false
				left--
			}
		}
		d.NumColors = phase + 1
	}
	// Safety net for astronomically unlucky seeds: any stragglers become
	// singleton clusters with fresh distinct colors, preserving the
	// proper-coloring property deterministically.
	for u := 0; u < n; u++ {
		if remaining[u] {
			d.Cluster[u] = u
			d.Color[u] = d.NumColors
			d.NumColors++
		}
	}
	return d
}

// ballDistances returns hop distances from v up to depth r inside the
// subgraph induced on the alive vertices.
func ballDistances(g *graph.Graph, v, r int, alive []bool) map[int]int {
	dist := map[int]int{v: 0}
	queue := []int{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] >= r {
			continue
		}
		for _, arc := range g.Adj(x) {
			if !alive[arc.To] {
				continue
			}
			if _, ok := dist[arc.To]; !ok {
				dist[arc.To] = dist[x] + 1
				queue = append(queue, arc.To)
			}
		}
	}
	return dist
}
