package decomp

import (
	"math"
	"sort"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// This file runs Linial-Saks as an actual message-passing protocol on the
// round engine, as the LOCAL model executes it: per phase, every remaining
// vertex draws a truncated-geometric radius and floods a (origin, radius,
// distance) token through the remaining subgraph for O(log n) rounds;
// vertices captured strictly inside the ball of their highest-id candidate
// cluster and leave. DistributedLinialSaks returns both the decomposition
// and the engine's round/message statistics.

// lsToken is one flooded candidate: origin vertex, its radius, and the
// hop distance from the origin to the receiver.
type lsToken struct {
	Origin, R, D int
}

// lsTokensMsg carries newly improved tokens. Each token is 3 words.
type lsTokensMsg struct {
	tokens []lsToken
	n      int
}

// Bits implements dist.Payload.
func (m lsTokensMsg) Bits() int { return (1 + 3*len(m.tokens)) * dist.IDBits(m.n) }

// lsClusteredMsg announces that the sender was captured this phase.
type lsClusteredMsg struct{}

// Bits implements dist.Payload.
func (lsClusteredMsg) Bits() int { return 1 }

// DistributedLinialSaks executes the Linial-Saks decomposition as a
// message-passing protocol and returns the decomposition plus the
// communication statistics. Results match the guarantees of LinialSaks;
// the exact clustering differs because radii are drawn from per-vertex
// RNG streams.
func DistributedLinialSaks(g *graph.Graph, seed int64) (*Decomposition, *dist.Stats, error) {
	n := g.N()
	d := &Decomposition{
		Cluster: make([]int, n),
		Color:   make([]int, n),
	}
	for v := range d.Cluster {
		d.Cluster[v] = -1
		d.Color[v] = -1
	}
	if n == 0 {
		return d, &dist.Stats{}, nil
	}
	maxRadius := 2*int(math.Ceil(math.Log2(float64(n+1)))) + 1
	maxPhases := 50 + 10*int(math.Ceil(math.Log2(float64(n+1))))

	proc := func(ctx *dist.Ctx) {
		me := ctx.ID()
		remaining := make(map[int]bool, len(ctx.Neighbors()))
		for _, u := range ctx.Neighbors() {
			remaining[u] = true
		}
		for phase := 0; phase < maxPhases; phase++ {
			r := 0
			for r < maxRadius && ctx.Rand().Intn(2) == 0 {
				r++
			}
			// Flood tokens through remaining vertices for maxRadius+1
			// rounds. known[o] = (radius of o, best distance to o).
			type cand struct{ r, d int }
			known := map[int]cand{me: {r: r, d: 0}}
			fresh := []lsToken{{Origin: me, R: r, D: 0}}
			for round := 0; round <= maxRadius; round++ {
				var outgoing []lsToken
				for _, tok := range fresh {
					if tok.D < tok.R {
						outgoing = append(outgoing, lsToken{Origin: tok.Origin, R: tok.R, D: tok.D + 1})
					}
				}
				sort.Slice(outgoing, func(i, j int) bool { return outgoing[i].Origin < outgoing[j].Origin })
				if len(outgoing) > 0 {
					for _, u := range ctx.Neighbors() {
						if remaining[u] {
							ctx.Send(u, lsTokensMsg{tokens: outgoing, n: n})
						}
					}
				}
				fresh = nil
				for _, m := range ctx.NextRound() {
					tm, ok := m.Payload.(lsTokensMsg)
					if !ok {
						continue
					}
					for _, tok := range tm.tokens {
						if c, seen := known[tok.Origin]; !seen || tok.D < c.d {
							known[tok.Origin] = cand{r: tok.R, d: tok.D}
							fresh = append(fresh, tok)
						}
					}
				}
			}
			// Capture: highest-id candidate whose ball covers me.
			captor, best := -1, cand{}
			for o, c := range known {
				if c.d <= c.r && o > captor {
					captor, best = o, c
				}
			}
			interior := captor >= 0 && best.d < best.r
			if interior {
				d.Cluster[me] = captor
				d.Color[me] = phase
				ctx.Broadcast(lsClusteredMsg{})
				ctx.NextRound()
				return
			}
			// Learn which neighbors left this phase.
			for _, m := range ctx.NextRound() {
				if _, ok := m.Payload.(lsClusteredMsg); ok {
					delete(remaining, m.From)
				}
			}
		}
		// Safety net (astronomically unlikely): self-cluster with a color
		// distinct from every phase color and from other stragglers'.
		d.Cluster[me] = me
		d.Color[me] = maxPhases + me
	}
	stats, err := dist.Run(dist.Config{Graph: g, Seed: seed}, proc)
	if err != nil {
		return nil, nil, err
	}
	colors := 0
	for _, c := range d.Color {
		if c+1 > colors {
			colors = c + 1
		}
	}
	d.NumColors = colors
	return d, stats, nil
}
