package decomp

import (
	"math"
	"testing"
	"testing/quick"

	"distspanner/internal/gen"
)

func TestPowerGraph(t *testing.T) {
	g := gen.Path(5)
	p2 := PowerGraph(g, 2)
	// P5 squared: edges {i,i+1} and {i,i+2}.
	if p2.M() != 4+3 {
		t.Fatalf("P5^2 has %d edges, want 7", p2.M())
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatal("P5^2 adjacency wrong")
	}
	p10 := PowerGraph(g, 10)
	if p10.M() != 10 { // complete graph on 5 vertices
		t.Fatalf("P5^10 has %d edges, want 10", p10.M())
	}
	mustPanic(t, func() { PowerGraph(g, 0) })
}

func TestLinialSaksCoversAllVertices(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ConnectedGNP(60, 0.08, seed)
		d := LinialSaks(g, seed)
		for v := 0; v < g.N(); v++ {
			if d.Cluster[v] == -1 || d.Color[v] == -1 {
				t.Fatalf("seed %d: vertex %d unclustered", seed, v)
			}
			if d.Color[v] >= d.NumColors {
				t.Fatalf("color out of range")
			}
		}
	}
}

func TestLinialSaksProperColoring(t *testing.T) {
	// Adjacent vertices in different clusters must have different colors:
	// that is the property letting same-color clusters run in parallel.
	for seed := int64(0); seed < 8; seed++ {
		g := gen.ConnectedGNP(50, 0.1, seed+100)
		d := LinialSaks(g, seed)
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if d.Cluster[e.U] != d.Cluster[e.V] && d.Color[e.U] == d.Color[e.V] {
				t.Fatalf("seed %d: adjacent clusters %d and %d share color %d",
					seed, d.Cluster[e.U], d.Cluster[e.V], d.Color[e.U])
			}
		}
	}
}

func TestLinialSaksLogarithmicGuarantees(t *testing.T) {
	// Colors and weak diameter should be O(log n); allow generous
	// constants.
	g := gen.ConnectedGNP(120, 0.05, 3)
	d := LinialSaks(g, 7)
	logn := math.Log2(float64(g.N()))
	if float64(d.NumColors) > 10*logn {
		t.Fatalf("%d colors exceeds O(log n) = %.1f", d.NumColors, 10*logn)
	}
	if wd := d.WeakDiameter(g); wd == -1 || float64(wd) > 12*logn {
		t.Fatalf("weak diameter %d exceeds O(log n)", wd)
	}
}

func TestLinialSaksClusterIdsAreMembersCaptors(t *testing.T) {
	g := gen.Grid(6, 6)
	d := LinialSaks(g, 2)
	clusters := d.Clusters()
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	total := 0
	for _, members := range clusters {
		total += len(members)
	}
	if total != g.N() {
		t.Fatalf("clusters cover %d of %d vertices", total, g.N())
	}
}

func TestLinialSaksSingletonAndEmpty(t *testing.T) {
	d0 := LinialSaks(gen.Path(0), 1)
	if d0.NumColors != 0 {
		t.Fatalf("empty graph NumColors = %d", d0.NumColors)
	}
	d1 := LinialSaks(gen.Path(1), 1)
	if d1.Cluster[0] != 0 && d1.Cluster[0] != -1 {
		// vertex must be clustered, necessarily by itself
		t.Fatalf("singleton cluster = %d", d1.Cluster[0])
	}
	if d1.Color[0] == -1 {
		t.Fatal("singleton vertex unclustered")
	}
}

func TestLinialSaksDeterministic(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.1, 9)
	a := LinialSaks(g, 5)
	b := LinialSaks(g, 5)
	for v := 0; v < g.N(); v++ {
		if a.Cluster[v] != b.Cluster[v] || a.Color[v] != b.Color[v] {
			t.Fatal("decomposition not deterministic for fixed seed")
		}
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// Property: PowerGraph(g, r) has an edge {u,v} exactly when the BFS
// distance in g is between 1 and r.
func TestPowerGraphMatchesDistancesProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int((seed%12+12)%12)
		g := gen.ConnectedGNP(n, 0.25, seed)
		r := 1 + int((seed%3+3)%3)
		p := PowerGraph(g, r)
		for u := 0; u < n; u++ {
			dist := g.BFS(u)
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				want := dist[v] >= 1 && dist[v] <= r
				if p.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
