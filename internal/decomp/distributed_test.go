package decomp

import (
	"testing"

	"distspanner/internal/gen"
)

func TestDistributedLinialSaksCoversAll(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ConnectedGNP(40, 0.1, seed)
		d, stats, err := DistributedLinialSaks(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if d.Cluster[v] == -1 || d.Color[v] == -1 {
				t.Fatalf("seed %d: vertex %d unclustered", seed, v)
			}
		}
		if stats.Rounds == 0 || stats.Messages == 0 {
			t.Fatal("no communication recorded")
		}
	}
}

func TestDistributedLinialSaksProperColoring(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.ConnectedGNP(36, 0.12, seed+50)
		d, _, err := DistributedLinialSaks(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if d.Cluster[e.U] != d.Cluster[e.V] && d.Color[e.U] == d.Color[e.V] {
				t.Fatalf("seed %d: adjacent clusters share color %d", seed, d.Color[e.U])
			}
		}
	}
}

func TestDistributedLinialSaksWeakDiameter(t *testing.T) {
	g := gen.ConnectedGNP(60, 0.08, 9)
	d, _, err := DistributedLinialSaks(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wd := d.WeakDiameter(g); wd == -1 || wd > 30 {
		t.Fatalf("weak diameter %d exceeds O(log n) expectation", wd)
	}
	if d.NumColors > 40 {
		t.Fatalf("%d colors exceeds O(log n) expectation", d.NumColors)
	}
}

func TestDistributedLinialSaksMessagesAreLocalSized(t *testing.T) {
	// Token floods carry lists: the protocol is a LOCAL algorithm, and on
	// dense graphs its messages exceed a CONGEST word.
	g := gen.ConnectedGNP(50, 0.3, 2)
	_, stats, err := DistributedLinialSaks(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits <= 64 {
		t.Fatalf("expected LOCAL-sized token messages, max = %d bits", stats.MaxMessageBits)
	}
}

func TestDistributedLinialSaksDeterministic(t *testing.T) {
	g := gen.Grid(5, 6)
	a, _, err := DistributedLinialSaks(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DistributedLinialSaks(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Cluster[v] != b.Cluster[v] || a.Color[v] != b.Color[v] {
			t.Fatal("distributed decomposition not deterministic per seed")
		}
	}
}

func TestDistributedLinialSaksSingleton(t *testing.T) {
	g := gen.Path(1)
	d, _, err := DistributedLinialSaks(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cluster[0] != 0 {
		t.Fatalf("singleton must self-cluster, got %d", d.Cluster[0])
	}
}
