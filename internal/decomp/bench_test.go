package decomp

import (
	"testing"

	"distspanner/internal/gen"
)

func BenchmarkLinialSaks(b *testing.B) {
	g := gen.ConnectedGNP(300, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinialSaks(g, int64(i))
	}
}

func BenchmarkDistributedLinialSaks(b *testing.B) {
	g := gen.ConnectedGNP(60, 0.08, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DistributedLinialSaks(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
