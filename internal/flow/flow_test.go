package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowDiamond(t *testing.T) {
	// s=0, t=3; two disjoint paths of capacity 3 and 2, plus a cross edge.
	d := NewDinic(4)
	d.AddEdge(0, 1, 3)
	d.AddEdge(0, 2, 2)
	d.AddEdge(1, 3, 2)
	d.AddEdge(2, 3, 3)
	d.AddEdge(1, 2, 1)
	got := d.MaxFlow(0, 3)
	if math.Abs(got-5) > 1e-6 {
		t.Fatalf("max flow = %f, want 5", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Chain 0 -> 1 -> 2 with caps 10, 1.
	d := NewDinic(3)
	d.AddEdge(0, 1, 10)
	d.AddEdge(1, 2, 1)
	if got := d.MaxFlow(0, 2); math.Abs(got-1) > 1e-6 {
		t.Fatalf("max flow = %f, want 1", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	d := NewDinic(4)
	d.AddEdge(0, 1, 5)
	d.AddEdge(2, 3, 5)
	if got := d.MaxFlow(0, 3); got != 0 {
		t.Fatalf("max flow across disconnected = %f, want 0", got)
	}
}

func TestMinCutSide(t *testing.T) {
	// 0 -> 1 (cap 1) -> 2 (cap 100): min cut is the first edge, so the
	// source side is {0}.
	d := NewDinic(3)
	d.AddEdge(0, 1, 1)
	d.AddEdge(1, 2, 100)
	d.MaxFlow(0, 2)
	side := d.MinCutSourceSide(0)
	if !side[0] || side[1] || side[2] {
		t.Fatalf("cut side = %v, want [true false false]", side)
	}
}

func TestDinicPanics(t *testing.T) {
	d := NewDinic(2)
	mustPanic(t, "same s and t", func() { d.MaxFlow(1, 1) })
	mustPanic(t, "negative cap", func() { d.AddEdge(0, 1, -1) })
	mustPanic(t, "out of range", func() { d.AddEdge(0, 2, 1) })
}

// Property: max-flow from 0 to n-1 in a random network equals the brute
// min-cut over all vertex bipartitions (checked on tiny networks).
func TestMaxFlowMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3..6 nodes
		caps := make(map[[2]int]float64)
		d := NewDinic(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.5 {
					c := float64(1 + rng.Intn(5))
					d.AddEdge(u, v, c)
					caps[[2]int{u, v}] += c
				}
			}
		}
		got := d.MaxFlow(0, n-1)

		// Brute-force min cut: enumerate all source sides containing 0 and
		// not n-1.
		best := math.Inf(1)
		for mask := 0; mask < 1<<uint(n); mask++ {
			if mask&1 == 0 || mask&(1<<uint(n-1)) != 0 {
				continue
			}
			cut := 0.0
			for e, c := range caps {
				if mask&(1<<uint(e[0])) != 0 && mask&(1<<uint(e[1])) == 0 {
					cut += c
				}
			}
			if cut < best {
				best = cut
			}
		}
		return math.Abs(got-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDensestTriangle(t *testing.T) {
	// Three items of cost 1 forming a triangle of pairs: the densest
	// selection is all three, density 3/3 = 1.
	in := &DensestInstance{
		NumItems: 3,
		Cost:     []float64{1, 1, 1},
		Bonus:    []float64{0, 0, 0},
		Pairs:    [][2]int{{0, 1}, {1, 2}, {0, 2}},
	}
	sel, density, err := Densest(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(density-1) > 1e-6 {
		t.Fatalf("density = %f, want 1", density)
	}
	for u, s := range sel {
		if !s {
			t.Fatalf("item %d not selected; want all of the triangle", u)
		}
	}
}

func TestDensestPrefersDenseCore(t *testing.T) {
	// Items 0..3 form a K4 (6 pairs); item 4 dangles with one pair to 0.
	// K4 alone has density 6/4 = 1.5; adding item 4 gives 7/5 = 1.4.
	in := &DensestInstance{
		NumItems: 5,
		Cost:     []float64{1, 1, 1, 1, 1},
		Bonus:    []float64{0, 0, 0, 0, 0},
		Pairs:    [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 4}},
	}
	sel, density, err := Densest(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(density-1.5) > 1e-6 {
		t.Fatalf("density = %f, want 1.5", density)
	}
	if sel[4] {
		t.Fatal("dangling item selected; it dilutes density")
	}
}

func TestDensestNoPairs(t *testing.T) {
	// No pairs, no bonuses: density 0, but the selection must be non-empty.
	in := &DensestInstance{
		NumItems: 3,
		Cost:     []float64{1, 1, 1},
		Bonus:    []float64{0, 0, 0},
	}
	sel, density, err := Densest(in)
	if err != nil {
		t.Fatal(err)
	}
	if density != 0 {
		t.Fatalf("density = %f, want 0", density)
	}
	count := 0
	for _, s := range sel {
		if s {
			count++
		}
	}
	if count == 0 {
		t.Fatal("selection must be non-empty even at density 0")
	}
}

func TestDensestBonusOnly(t *testing.T) {
	// Item 1 has bonus 5 at cost 2 (ratio 2.5); item 0 has bonus 1 at cost
	// 1. Selecting only item 1 is best.
	in := &DensestInstance{
		NumItems: 2,
		Cost:     []float64{1, 2},
		Bonus:    []float64{1, 5},
	}
	sel, density, err := Densest(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(density-2.5) > 1e-6 {
		t.Fatalf("density = %f, want 2.5", density)
	}
	if sel[0] || !sel[1] {
		t.Fatalf("selection = %v, want only item 1", sel)
	}
}

func TestDensestWeightedCosts(t *testing.T) {
	// A pair between two items of cost 0.5 each: density = 1/1 = 1.
	// A competing pair between items of cost 2 each: density 1/4.
	in := &DensestInstance{
		NumItems: 4,
		Cost:     []float64{0.5, 0.5, 2, 2},
		Bonus:    []float64{0, 0, 0, 0},
		Pairs:    [][2]int{{0, 1}, {2, 3}},
	}
	sel, density, err := Densest(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(density-1) > 1e-6 {
		t.Fatalf("density = %f, want 1", density)
	}
	if !sel[0] || !sel[1] || sel[2] || sel[3] {
		t.Fatalf("selection = %v, want items 0,1 only", sel)
	}
}

func TestDensestValidation(t *testing.T) {
	if _, _, err := Densest(&DensestInstance{NumItems: 0}); err == nil {
		t.Fatal("zero items must error")
	}
	bad := &DensestInstance{NumItems: 1, Cost: []float64{0}, Bonus: []float64{0}}
	if _, _, err := Densest(bad); err == nil {
		t.Fatal("zero cost must error")
	}
	badPair := &DensestInstance{
		NumItems: 2, Cost: []float64{1, 1}, Bonus: []float64{0, 0},
		Pairs: [][2]int{{0, 0}},
	}
	if _, _, err := Densest(badPair); err == nil {
		t.Fatal("self-pair must error")
	}
}

// Property: Densest matches brute-force enumeration on random small
// instances with unit costs.
func TestDensestMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // 2..7 items
		in := &DensestInstance{
			NumItems: n,
			Cost:     make([]float64, n),
			Bonus:    make([]float64, n),
		}
		for u := 0; u < n; u++ {
			in.Cost[u] = 1
			if rng.Intn(4) == 0 {
				in.Bonus[u] = float64(rng.Intn(3))
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.4 {
					in.Pairs = append(in.Pairs, [2]int{a, b})
				}
			}
		}
		_, got, err := Densest(in)
		if err != nil {
			return false
		}
		best := 0.0
		for mask := 1; mask < 1<<uint(n); mask++ {
			T := make([]bool, n)
			for u := 0; u < n; u++ {
				T[u] = mask&(1<<uint(u)) != 0
			}
			p, c := in.Value(T)
			if d := p / c; d > best {
				best = d
			}
		}
		return math.Abs(got-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// Property: Densest with non-unit costs matches brute force.
func TestDensestWeightedMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		in := &DensestInstance{
			NumItems: n,
			Cost:     make([]float64, n),
			Bonus:    make([]float64, n),
		}
		for u := 0; u < n; u++ {
			in.Cost[u] = 0.5 + float64(rng.Intn(4))
			in.Bonus[u] = float64(rng.Intn(2))
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.5 {
					in.Pairs = append(in.Pairs, [2]int{a, b})
				}
			}
		}
		_, got, err := Densest(in)
		if err != nil {
			return false
		}
		best := 0.0
		for mask := 1; mask < 1<<uint(n); mask++ {
			T := make([]bool, n)
			for u := 0; u < n; u++ {
				T[u] = mask&(1<<uint(u)) != 0
			}
			p, c := in.Value(T)
			if d := p / c; d > best {
				best = d
			}
		}
		return math.Abs(got-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
