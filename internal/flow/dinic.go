// Package flow provides the maximum-flow machinery the paper's algorithms
// rely on: a Dinic max-flow solver and a Dinkelbach-style densest-selection
// oracle. Kortsarz-Peleg's sequential greedy and the paper's distributed
// 2-spanner algorithm both compute densest stars "in polynomial time using
// flow techniques [36]"; this package is that substrate.
package flow

import (
	"fmt"
	"math"
)

const eps = 1e-9

type dinicEdge struct {
	to   int
	cap  float64
	flow float64
	rev  int // index of the reverse edge in adj[to]
}

// Dinic is a maximum-flow solver over a directed network with float64
// capacities. Construct with NewDinic, add edges, then call MaxFlow.
type Dinic struct {
	n     int
	adj   [][]dinicEdge
	level []int
	iter  []int
}

// NewDinic returns a flow network on n nodes.
func NewDinic(n int) *Dinic {
	if n < 0 {
		panic("flow: negative node count")
	}
	return &Dinic{n: n, adj: make([][]dinicEdge, n)}
}

// AddEdge inserts a directed edge u -> v with the given capacity and
// returns an opaque handle (unused by callers today, kept for symmetry with
// standard flow APIs).
func (d *Dinic) AddEdge(u, v int, capacity float64) {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, d.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic("flow: invalid capacity")
	}
	d.adj[u] = append(d.adj[u], dinicEdge{to: v, cap: capacity, rev: len(d.adj[v])})
	d.adj[v] = append(d.adj[v], dinicEdge{to: u, cap: 0, rev: len(d.adj[u]) - 1})
}

// MaxFlow computes the maximum s-t flow. It may be called once per network;
// afterwards MinCutSourceSide reads the final residual graph.
func (d *Dinic) MaxFlow(s, t int) float64 {
	if s == t {
		panic("flow: source equals sink")
	}
	total := 0.0
	for d.bfs(s, t) {
		d.iter = make([]int, d.n)
		for {
			f := d.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (d *Dinic) bfs(s, t int) bool {
	d.level = make([]int, d.n)
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int, 0, d.n)
	d.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range d.adj[v] {
			if e.cap-e.flow > eps && d.level[e.to] < 0 {
				d.level[e.to] = d.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return d.level[t] >= 0
}

func (d *Dinic) dfs(v, t int, f float64) float64 {
	if v == t {
		return f
	}
	for ; d.iter[v] < len(d.adj[v]); d.iter[v]++ {
		e := &d.adj[v][d.iter[v]]
		if e.cap-e.flow <= eps || d.level[v]+1 != d.level[e.to] {
			continue
		}
		got := d.dfs(e.to, t, math.Min(f, e.cap-e.flow))
		if got > eps {
			e.flow += got
			d.adj[e.to][e.rev].flow -= got
			return got
		}
	}
	return 0
}

// MinCutSourceSide returns, after MaxFlow, the set of nodes reachable from
// s in the residual graph: the source side of a minimum cut.
func (d *Dinic) MinCutSourceSide(s int) []bool {
	side := make([]bool, d.n)
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range d.adj[v] {
			if e.cap-e.flow > eps && !side[e.to] {
				side[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return side
}
