package flow

import (
	"fmt"
	"math"
)

// DensestInstance describes a densest-selection problem, the abstraction
// behind "densest star" computations:
//
//   - There are NumItems selectable items; selecting item u costs Cost[u] > 0
//     and immediately yields Bonus[u] >= 0 units of profit.
//   - Each Pair {a, b} yields 1 unit of profit if both items are selected.
//
// The goal is a non-empty selection T maximizing
//
//	density(T) = (pairs inside T + Σ_{u∈T} Bonus[u]) / Σ_{u∈T} Cost[u].
//
// For the unweighted densest v-star, items are v's neighbors (cost 1 each),
// pairs are the uncovered edges between neighbors, and bonuses are 0; this
// is exactly the maximum-density subgraph problem. For the weighted star,
// costs are edge weights and bonuses count uncovered edges to zero-weight
// neighbors (which are always taken for free).
type DensestInstance struct {
	NumItems int
	Cost     []float64
	Bonus    []float64
	Pairs    [][2]int
}

// Validate checks the instance for structural errors.
func (in *DensestInstance) Validate() error {
	if in.NumItems <= 0 {
		return fmt.Errorf("flow: densest instance needs at least one item, got %d", in.NumItems)
	}
	if len(in.Cost) != in.NumItems || len(in.Bonus) != in.NumItems {
		return fmt.Errorf("flow: cost/bonus length mismatch with %d items", in.NumItems)
	}
	for u, c := range in.Cost {
		if c <= 0 || math.IsNaN(c) {
			return fmt.Errorf("flow: item %d has non-positive cost %f", u, c)
		}
	}
	for u, b := range in.Bonus {
		if b < 0 || math.IsNaN(b) {
			return fmt.Errorf("flow: item %d has negative bonus %f", u, b)
		}
	}
	for _, p := range in.Pairs {
		if p[0] < 0 || p[0] >= in.NumItems || p[1] < 0 || p[1] >= in.NumItems || p[0] == p[1] {
			return fmt.Errorf("flow: invalid pair %v", p)
		}
	}
	return nil
}

// Value returns the profit of selection T (pairs fully inside T plus
// bonuses of T's items) and its total cost.
func (in *DensestInstance) Value(T []bool) (profit, cost float64) {
	for u, sel := range T {
		if sel {
			profit += in.Bonus[u]
			cost += in.Cost[u]
		}
	}
	for _, p := range in.Pairs {
		if T[p[0]] && T[p[1]] {
			profit++
		}
	}
	return profit, cost
}

// Densest solves the densest-selection problem exactly (up to floating
// precision) via Dinkelbach iteration with a project-selection min-cut at
// each step. It returns the selected items and the achieved density.
//
// Every call runs in polynomial time: each Dinkelbach step strictly
// increases the density, and for the rational densities arising from
// unit-profit instances the number of steps is bounded by the number of
// distinct density values.
func Densest(in *DensestInstance) (selected []bool, density float64, err error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	// Starting point: the best singleton (guaranteed non-empty selection).
	best := make([]bool, in.NumItems)
	bestIdx := 0
	bestDensity := in.Bonus[0] / in.Cost[0]
	for u := 1; u < in.NumItems; u++ {
		if d := in.Bonus[u] / in.Cost[u]; d > bestDensity {
			bestDensity, bestIdx = d, u
		}
	}
	best[bestIdx] = true

	for iter := 0; iter < 200; iter++ {
		T, gain := in.maxGainSelection(bestDensity)
		if gain <= eps || T == nil {
			break
		}
		profit, cost := in.Value(T)
		d := profit / cost
		if d <= bestDensity+eps {
			break
		}
		best, bestDensity = T, d
	}
	return best, bestDensity, nil
}

// maxGainSelection finds T maximizing profit(T) - g*cost(T) via a
// project-selection min-cut, returning nil if the maximum is not positive.
func (in *DensestInstance) maxGainSelection(g float64) ([]bool, float64) {
	// Node layout: 0 = source, 1 = sink, 2..2+NumItems = items,
	// then one node per pair.
	s, t := 0, 1
	itemNode := func(u int) int { return 2 + u }
	pairNode := func(p int) int { return 2 + in.NumItems + p }
	d := NewDinic(2 + in.NumItems + len(in.Pairs))

	totalProfit := 0.0
	inf := 1.0
	for _, b := range in.Bonus {
		totalProfit += b
	}
	totalProfit += float64(len(in.Pairs))
	inf = totalProfit + 1

	for u := 0; u < in.NumItems; u++ {
		if in.Bonus[u] > 0 {
			d.AddEdge(s, itemNode(u), in.Bonus[u])
		}
		d.AddEdge(itemNode(u), t, g*in.Cost[u])
	}
	for p, pr := range in.Pairs {
		d.AddEdge(s, pairNode(p), 1)
		d.AddEdge(pairNode(p), itemNode(pr[0]), inf)
		d.AddEdge(pairNode(p), itemNode(pr[1]), inf)
	}
	cut := d.MaxFlow(s, t)
	gain := totalProfit - cut
	if gain <= eps {
		return nil, 0
	}
	side := d.MinCutSourceSide(s)
	T := make([]bool, in.NumItems)
	nonEmpty := false
	for u := 0; u < in.NumItems; u++ {
		if side[itemNode(u)] {
			T[u] = true
			nonEmpty = true
		}
	}
	if !nonEmpty {
		return nil, 0
	}
	return T, gain
}
