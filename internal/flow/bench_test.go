package flow

import (
	"math/rand"
	"testing"
)

func BenchmarkMaxFlowRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type edge struct {
		u, v int
		c    float64
	}
	var edges []edge
	const n = 60
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < 0.1 {
				edges = append(edges, edge{u, v, 1 + rng.Float64()*4})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDinic(n)
		for _, e := range edges {
			d.AddEdge(e.u, e.v, e.c)
		}
		d.MaxFlow(0, n-1)
	}
}

func BenchmarkDensestSelection(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const k = 40
	in := &DensestInstance{NumItems: k, Cost: make([]float64, k), Bonus: make([]float64, k)}
	for i := 0; i < k; i++ {
		in.Cost[i] = 1
	}
	for a := 0; a < k; a++ {
		for c := a + 1; c < k; c++ {
			if rng.Float64() < 0.3 {
				in.Pairs = append(in.Pairs, [2]int{a, c})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Densest(in); err != nil {
			b.Fatal(err)
		}
	}
}
