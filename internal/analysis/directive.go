package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// spanlint directives are justification comments that waive one specific
// diagnostic at one specific site. Each analyzer has its own verb, and
// every directive must carry a justification after the verb — an
// unexplained waiver is itself a diagnostic, so the annotation records
// *why* the contract holds, not merely that someone silenced the tool:
//
//	//spanlint:ordered <why>   detmap: this map fold is order-insensitive
//	//spanlint:impure <why>    detsource: this impure call is engine-serialized / not replayed
//	//spanlint:bits f g <why>  bitsacct: fields f, g are charged by a constant term
//	//spanlint:nocancel <why>  cancelprop: this call legitimately outlives / drops cancel
//
// A directive applies to the line it is written on (trailing comment) or
// to the line directly below it (comment-above), matching the placement
// conventions of //nolint and //go:build.

const directivePrefix = "//spanlint:"

// directive is one parsed //spanlint: comment.
type directive struct {
	verb string // "ordered", "impure", "bits", "nocancel"
	args string // everything after the verb, trimmed
	pos  token.Pos
}

// directiveIndex maps file:line to the directives governing that line.
type directiveIndex map[string]map[int][]directive

// directivesAt returns the directives that govern pos: those written on
// pos's own line plus those on the line immediately above.
func (p *Pass) directivesAt(pos token.Pos) []directive {
	if p.directives == nil {
		p.directives = buildDirectiveIndex(p.Fset, p.Files)
	}
	posn := p.Fset.Position(pos)
	lines := p.directives[posn.Filename]
	var out []directive
	out = append(out, lines[posn.Line]...)
	out = append(out, lines[posn.Line-1]...)
	return out
}

// directiveAt returns the first directive with the given verb governing
// pos, or nil.
func (p *Pass) directiveAt(pos token.Pos, verb string) *directive {
	for _, d := range p.directivesAt(pos) {
		if d.verb == verb {
			return &d
		}
	}
	return nil
}

// waived reports whether a diagnostic at pos is waived by a verb
// directive. A directive with an empty justification does not waive —
// instead it draws its own diagnostic, so silencing always documents the
// reasoning.
func (p *Pass) waived(pos token.Pos, verb string) bool {
	d := p.directiveAt(pos, verb)
	if d == nil {
		return false
	}
	if strings.TrimSpace(d.args) == "" {
		p.Reportf(d.pos, "//spanlint:%s needs a justification — say why the contract holds here", verb)
	}
	return true
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				verb, args, _ := strings.Cut(text, " ")
				posn := fset.Position(c.Pos())
				lines := idx[posn.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], directive{verb: verb, args: strings.TrimSpace(args), pos: c.Pos()})
			}
		}
	}
	return idx
}

// funcDirective returns the first verb directive in a function's doc
// comment, or nil. bitsacct waivers live on the Bits method declaration,
// where the accounting they justify is written.
func funcDirective(decl *ast.FuncDecl, verb string) *directive {
	if decl.Doc == nil {
		return nil
	}
	for _, c := range decl.Doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		v, args, _ := strings.Cut(text, " ")
		if v == verb {
			return &directive{verb: v, args: strings.TrimSpace(args), pos: c.Pos()}
		}
	}
	return nil
}
