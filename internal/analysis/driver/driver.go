// Package driver loads and typechecks module packages for spanlint's
// standalone mode.
//
// The loader shells out to `go list -export -deps -json`, which the go
// toolchain serves entirely from the local module and build cache — no
// network, no GOPATH layout. Target packages (the ones matching the
// patterns) are parsed and typechecked from source so the analyzers get
// syntax; every dependency, including the standard library, is imported
// from the compiler export data `go list -export` leaves in the build
// cache. This is the same shape as the vet unitchecker protocol
// (internal/analysis/unitchecker), just with the loader inlined instead
// of cmd/go handing us a config file per package.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"distspanner/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the driver uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Diagnostic is one finding with its resolved position.
type Diagnostic struct {
	Position token.Position
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Category, d.Message)
}

// Run loads the packages matching patterns, applies the analyzers to
// each non-dependency package, and returns all diagnostics sorted by
// position. The returned error reports loader or typechecker failures,
// not findings.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var diags []Diagnostic
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		ds, err := analyzePackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Message < b.Message
	})
	return dedupe(diags), nil
}

// dedupe drops identical findings (nested function literals can make two
// passes over one call site).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

func load(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func analyzePackage(fset *token.FileSet, imp *exportImporter, p listedPackage, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &mappedImporter{imp: imp, importMap: p.ImportMap},
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %v", err)
	}
	return RunAnalyzers(fset, files, tpkg, info, analyzers)
}

// RunAnalyzers applies the suite to one already-typechecked package.
// Exported for the unitchecker and the test harness, which load packages
// their own way.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Position: fset.Position(d.Pos),
				Category: d.Category,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// exportImporter resolves canonical import paths through compiler export
// data files.
type exportImporter struct {
	gc types.ImporterFrom
}

// NewExportImporter builds an importer over a canonical-path → export
// data file map. Exported for the unitchecker (whose map comes from the
// vet config) and the test harness (whose map comes from a go list probe).
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	return newExportImporter(fset, exports)
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return e.gc.ImportFrom(path, dir, mode)
}

// mappedImporter applies one package's source-path → canonical-path map
// before hitting the shared export importer.
type mappedImporter struct {
	imp       *exportImporter
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if canon, ok := m.importMap[path]; ok {
		path = canon
	}
	return m.imp.Import(path)
}
