package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"distspanner/internal/analysis"
	"distspanner/internal/analysis/atest"
	"distspanner/internal/analysis/driver"
)

// The golden fixtures under testdata/src pair every analyzer with true
// positives and proven-clean or waived negatives. The fixture import
// paths end in the suffixes the default scopes match (…/internal/gen,
// …/internal/core, …/internal/dist), so these runs exercise the real
// scoping rules end to end.

func TestDetmapFixtures(t *testing.T) {
	atest.Run(t, []*analysis.Analyzer{analysis.Detmap},
		"./internal/analysis/testdata/src/detmap/internal/gen")
}

func TestDetsourceAlgoPackageFixtures(t *testing.T) {
	atest.Run(t, []*analysis.Analyzer{analysis.Detsource},
		"./internal/analysis/testdata/src/detsource/internal/core")
}

func TestDetsourceMachineScopeFixtures(t *testing.T) {
	atest.Run(t, []*analysis.Analyzer{analysis.Detsource},
		"./internal/analysis/testdata/src/detsource/internal/dist")
}

func TestBitsacctFixtures(t *testing.T) {
	atest.Run(t, []*analysis.Analyzer{analysis.Bitsacct},
		"./internal/analysis/testdata/src/bitsacct/internal/dist")
}

func TestCancelpropFixtures(t *testing.T) {
	atest.Run(t, []*analysis.Analyzer{analysis.Cancelprop},
		"./internal/analysis/testdata/src/cancelprop")
}

// TestUnjustifiedDirective pins the rule the fixtures cannot express with
// trailing want comments (the directive occupies the line): a bare
// //spanlint: directive with no justification waives the underlying
// diagnostic but draws its own, so silencing always documents why.
func TestUnjustifiedDirective(t *testing.T) {
	const src = `package gen

func Keys(m map[int]int) []int {
	var out []int
	//spanlint:ordered
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	diags := checkSource(t, "distspanner/internal/gen", src, analysis.Detmap)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the missing-justification one", len(diags), diags)
	}
	if want := "//spanlint:ordered needs a justification"; !strings.Contains(diags[0].Message, want) {
		t.Fatalf("diagnostic %q does not mention %q", diags[0].Message, want)
	}
	if line := diags[0].Position.Line; line != 5 {
		t.Fatalf("diagnostic anchored at line %d, want the directive's line 5", line)
	}
}

// TestScopeSuffixes pins the package scoping: a map range that is flagged
// in a critical package is ignored in an out-of-scope one.
func TestScopeSuffixes(t *testing.T) {
	const src = `package x

func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	if diags := checkSource(t, "example.com/tools/x", src, analysis.Detmap); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %v", diags)
	}
	if diags := checkSource(t, "example.com/internal/gen", src, analysis.Detmap); len(diags) != 1 {
		t.Fatalf("critical-suffix package drew %v, want one detmap finding", diags)
	}
}

// checkSource typechecks one import-free source string under the given
// package path and runs the analyzer over it.
func checkSource(t *testing.T, pkgPath, src string, a *analysis.Analyzer) []driver.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunAnalyzers(fset, []*ast.File{f}, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}
