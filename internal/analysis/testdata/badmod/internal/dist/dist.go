// Package dist is a miniature structural stand-in for the engine inside
// the known-bad fixture module. spanlint recognizes the engine by shape
// (a Machine interface with Step, a Ctx with Send, a Config with a Cancel
// channel), not by import path, so this fake is enough for every analyzer
// to engage exactly as it does against the real repository.
package dist

// Ctx is the vertex context stand-in.
type Ctx struct{}

// Send exists so the shape detector recognizes Ctx.
func (c *Ctx) Send(to int, payload any) {}

// Machine is the vertex interface stand-in.
type Machine interface {
	Step(c *Ctx, round int) bool
}

// Config carries the cancel channel a launch must be reachable by.
type Config struct {
	Seed   int64
	Cancel <-chan struct{}
}

// Run stands in for the engine entry point.
func Run(m Machine, cfg Config) error { return nil }

// Msg is a payload whose Rank field was added without touching Bits —
// the drift bitsacct exists to catch.
type Msg struct {
	IDs  []int
	Rank int
}

// Bits bills the id list but not Rank.
func (m Msg) Bits() int { return 32 * len(m.IDs) } // seed:bitsacct
