// Package core seeds one violation per remaining analyzer. Its import
// path suffix internal/core puts it in both the critical and the
// algorithm scopes, matching the real repository layout.
package core

import (
	"time"

	"spanlintbad/internal/dist"
)

type node struct {
	id int
}

// Step reads the wall clock inside step code.
func (n *node) Step(c *dist.Ctx, round int) bool {
	_ = time.Now() // seed:detsource
	return false
}

// Keys leaks map iteration order into slice order.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m { // seed:detmap
		out = append(out, k)
	}
	return out
}

// Launch builds a Config its cancel channel never reaches.
func Launch(cancel <-chan struct{}) error {
	_ = cancel
	return dist.Run(&node{id: 1}, dist.Config{Seed: 1}) // seed:cancelprop
}
