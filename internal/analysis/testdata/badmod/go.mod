module spanlintbad

go 1.24
