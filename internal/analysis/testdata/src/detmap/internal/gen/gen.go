// Package gen is the detmap golden fixture. Its import path ends in
// /internal/gen, so the default critical-package scope applies: every map
// range here must be provably order-insensitive, annotated, or flagged.
package gen

import "sort"

// Collect leaks map iteration order into slice order: flagged.
func Collect(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `range over map map\[int\]string in determinism-critical package`
		out = append(out, v)
	}
	return out
}

// CollectSorted is the canonical collect-then-sort idiom: clean.
func CollectSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// CollectUnsorted appends but never sorts, so the proof fails: flagged.
func CollectUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `range over map map\[int\]string`
		out = append(out, v)
	}
	return append(out, "tail")
}

// Count accumulates an integer, which commutes: clean.
func Count(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// CountMatching folds through a condition over loop-constant state: clean.
func CountMatching(m map[int]string, needle string) int {
	n := 0
	for _, v := range m {
		if v == needle {
			n++
		}
	}
	return n
}

// SumFloat accumulates floats, where addition order changes rounding:
// flagged even though += looks commutative.
func SumFloat(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `range over map map\[int\]float64`
		s += v
	}
	return s
}

// Scale writes a distinct destination key per iteration with a pure
// right-hand side, so the writes commute: clean.
func Scale(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Renumber indexes the destination by the VALUE, not the iteration key —
// values may collide, so the last writer wins in visit order: flagged.
func Renumber(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m { // want `range over map map\[int\]int`
		out[v] = k
	}
	return out
}

// Drain only deletes, which commutes: clean.
func Drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// MaxValue's condition reads the accumulator the loop writes, so ties
// resolve in visit order: flagged.
func MaxValue(m map[int]int) int {
	best := 0
	for _, v := range m { // want `range over map map\[int\]int`
		if v > best {
			best = v
		}
	}
	return best
}

// AnyKey is waived with a justification: clean.
func AnyKey(m map[int]int) int {
	//spanlint:ordered the caller treats the result as an arbitrary representative, so any key is valid
	for k := range m {
		return k
	}
	return -1
}
