// Package core is the detsource golden fixture for the algorithm-package
// scope: its import path ends in /internal/core, so its entire surface is
// treated as vertex step code and every impure source is flagged.
package core

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in step code Stamp`
}

// Nap waits on the wall clock: flagged.
func Nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in step code Nap`
}

// Draw uses the process-global generator: flagged.
func Draw() int {
	return rand.Intn(10) // want `math/rand\.Intn in step code Draw`
}

// Env smuggles host state into the run: flagged.
func Env() string {
	return os.Getenv("HOME") // want `os\.Getenv in step code Env`
}

// Spawn creates concurrency the engine does not serialize: flagged.
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine spawned in step code Spawn`
}

// SeededDraw draws from an injected generator — exactly what Ctx.Rand
// hands out: clean.
func SeededDraw(r *rand.Rand) int {
	return r.Intn(10)
}

// RoundDuration manipulates time values without reading the clock: clean.
func RoundDuration(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// Measured is waived as an engine-serialized measurement hook: clean.
func Measured() int64 {
	//spanlint:impure engine-serialized telemetry hook, excluded from the replayed transcript
	return time.Now().UnixNano()
}
