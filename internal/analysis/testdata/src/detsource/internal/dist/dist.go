// Package dist is the detsource golden fixture for the Machine-method
// scope: a critical package that is NOT an algorithm package, carrying a
// miniature structural stand-in for the engine. Only methods of types
// implementing Machine (or PhasedProgram) are step code here; free
// functions are not.
package dist

import "time"

// Ctx is the structural stand-in for the engine's vertex context.
type Ctx struct{}

// Send exists so the shape detector recognizes Ctx.
func (c *Ctx) Send(to int, payload any) {}

// Machine is the structural stand-in for the engine's vertex interface.
type Machine interface {
	Step(c *Ctx, round int) bool
}

// vertex implements Machine, so every one of its methods — Step and the
// helpers Step calls — is step code.
type vertex struct {
	id int
}

func (v *vertex) Step(c *Ctx, round int) bool {
	_ = time.Now() // want `time\.Now in step code vertex\.Step`
	return v.helper()
}

// helper is step code by virtue of its receiver, even though nothing
// marks the method itself.
func (v *vertex) helper() bool {
	return time.Since(time.Unix(0, 0)) > 0 // want `time\.Since in step code vertex\.helper`
}

// Stamp is a free function in a critical non-algorithm package: the wall
// clock is legal outside step code, so this is clean.
func Stamp() int64 {
	return time.Now().UnixNano()
}
