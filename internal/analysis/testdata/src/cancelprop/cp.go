// Package cancelprop is the cancelprop golden fixture. The analyzer runs
// in every package — accepting a cancel channel is the obligation, not
// the import path — so this fixture needs no critical-path suffix.
package cancelprop

// Config mirrors the dist.Config / core.Options shape: a launch config
// with a Cancel field the analyzer expects populated whenever a cancel
// channel is in scope.
type Config struct {
	Seed   int64
	Cancel <-chan struct{}
}

// Launch stands in for an engine run.
func Launch(cfg Config) error { return nil }

// Blocky stands in for a callee that accepts a cancel channel.
func Blocky(n int, cancel <-chan struct{}) error {
	select {
	case <-cancel:
	default:
	}
	return nil
}

// Dropped accepts the obligation and drops it on the floor: flagged.
func Dropped(n int, cancel <-chan struct{}) error { // want `Dropped accepts a cancel channel but never propagates it`
	return Blocky(n, make(chan struct{}))
}

// NilPass blocks a callee uncancelably while holding a live cancel:
// flagged at the nil argument.
func NilPass(cancel <-chan struct{}) error {
	_ = cancel
	return Blocky(1, nil) // want `nil cancel passed to Blocky`
}

// NoWire launches a run its own cancel can never reach: flagged at the
// config literal.
func NoWire(cancel <-chan struct{}) error {
	_ = cancel
	return Launch(Config{Seed: 1}) // want `Config built without Cancel while a cancel channel is in scope`
}

// Wired propagates properly: clean.
func Wired(cancel <-chan struct{}) error {
	return Launch(Config{Seed: 1, Cancel: cancel})
}

// Forwarded hands the channel straight to a callee: clean.
func Forwarded(cancel <-chan struct{}) error {
	return Blocky(2, cancel)
}

// Derived wires a locally merged canceler downstream — cancellation still
// reaches the run, through a different channel value: clean.
func Derived(cancel <-chan struct{}) error {
	merged := make(chan struct{})
	go func() {
		<-cancel
		close(merged)
	}()
	return Launch(Config{Seed: 1, Cancel: merged})
}

// Ignored opts out with the blank identifier the language provides: clean.
func Ignored(n int, _ <-chan struct{}) int { return n }

// PureMath keeps the named parameter an interface demands but waives the
// obligation with a justification: clean.
func PureMath(cancel <-chan struct{}) int { //spanlint:nocancel signature fixed by the scenario interface; the body is closed-form arithmetic
	return 42
}

// WaivedLiteral justifies leaving one launch uncancellable: clean.
func WaivedLiteral(cancel <-chan struct{}) error {
	_ = cancel
	//spanlint:nocancel this run is bounded to one round and returns before cancellation could matter
	return Launch(Config{Seed: 1})
}
