// Package dist is the bitsacct golden fixture: payload structs — structs
// with a Bits() int method in a critical package — whose fields must all
// be referenced (or waived) in their bit accounting. The cases mirror
// dist.AuditPayloadFields' runtime semantics exactly: unexported fields
// count, embedded structs count as one field under their type name, and
// constant-term fields are waived by name on the method's doc comment.
package dist

// header is an embedded accounting prefix. Its tag is charged by a
// constant term, so it is waived rather than referenced.
type header struct {
	Tag int
}

//spanlint:bits Tag — one fixed 8-bit tag word
func (h header) Bits() int { return 8 }

// goodMsg references every field: the embedded header through its own
// Bits, the unexported slice per element, and the flag bit. Clean.
type goodMsg struct {
	header
	ids  []int
	full bool
}

func (m goodMsg) Bits() int {
	b := m.header.Bits() + 32*len(m.ids)
	if m.full {
		b++
	}
	return b
}

// promoMsg covers its embedded field through a promoted selector: m.Tag
// resolves through header, which counts as referencing it. Clean.
type promoMsg struct {
	header
	n int
}

func (m promoMsg) Bits() int {
	return m.Tag + m.n
}

// badMsg grew a rank field nobody billed: flagged, with the same field
// name the runtime audit would report.
type badMsg struct {
	ids  []int
	rank int
}

func (m badMsg) Bits() int { // want `badMsg\.rank is not referenced in Bits\(\) accounting`
	return 32 * len(m.ids)
}

// wrapMsg forgot its embedded header entirely — reflect sees one field
// named header, and so does the analyzer: flagged.
type wrapMsg struct {
	header
	n int
}

func (m wrapMsg) Bits() int { // want `wrapMsg\.header is not referenced in Bits\(\) accounting`
	return 32 + m.n
}

// secretMsg under-accounts an unexported field — wire records transmit
// unexported fields all the same: flagged.
type secretMsg struct {
	n    int
	seen bool
}

func (m secretMsg) Bits() int { // want `secretMsg\.seen is not referenced in Bits\(\) accounting`
	return m.n
}

// staleMsg waives a field that no longer exists: flagged as a stale
// waiver so deleted fields cannot leave dangling justifications.
type staleMsg struct {
	n int
}

//spanlint:bits gone — the field this waived was deleted
func (m staleMsg) Bits() int { return m.n } // want `//spanlint:bits waives "gone" but staleMsg has no such field`
