package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Bitsacct is the static companion to dist.AuditPayloadFields: every
// field of a payload struct — a struct with a `Bits() int` method in a
// determinism-critical package — must be referenced by its Bits method,
// or explicitly waived on the method's doc comment with
// `//spanlint:bits <field…> — <why>`.
//
// The runtime audit demands an accounting-table entry for every field
// (exported or not, embedded or not) and fails CI when a reflection test
// covers the type; this analyzer catches the same drift at build time
// and for types no conformance test names. The agreement is exact:
//
//   - unexported fields count — the wire records transmit them all, so
//     the accounting must bill them all;
//   - an embedded struct is one field under its type name, exactly as
//     reflect sees it: referencing the embedded value (typically
//     `m.Inner.Bits()`) covers it, and its promoted fields are audited
//     where the inner type's own Bits method is declared;
//   - a field charged by a constant term (fixed-width words, flag bits)
//     is never *referenced*, so it must be named in the waiver — which is
//     how the accounting rationale ends up written next to the method.
//
// Adding a payload field without touching Bits therefore fails the build
// here and the conformance test at run time, with the same field name in
// both messages.
var Bitsacct = &Analyzer{
	Name: "bitsacct",
	Doc:  "requires every payload struct field to be referenced (or //spanlint:bits-waived) in its Bits() accounting",
	Run:  runBitsacct,
}

func runBitsacct(pass *Pass) error {
	if !pass.critical() {
		return nil
	}
	pass.walkFiles(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Bits" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() != 1 {
				continue
			}
			checkBitsMethod(pass, fd)
		}
	})
	return nil
}

func checkBitsMethod(pass *Pass, fd *ast.FuncDecl) {
	recv := fd.Recv.List[0]
	t := pass.TypesInfo.TypeOf(recv.Type)
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	waived := make(map[string]bool)
	if d := funcDirective(fd, "bits"); d != nil {
		names, why := splitWaiver(d.args)
		if len(names) == 0 || why == "" {
			pass.Reportf(d.pos, "//spanlint:bits needs waived field names and a justification: //spanlint:bits <field…> — <why>")
		}
		for _, n := range names {
			waived[n] = true
		}
	}
	referenced := fieldRefsInBody(pass, fd, t)
	typeName := types.TypeString(t, types.RelativeTo(pass.Pkg))
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if referenced[f.Name()] {
			continue
		}
		if waived[f.Name()] {
			delete(waived, f.Name())
			continue
		}
		pass.Reportf(fd.Pos(), "%s.%s is not referenced in Bits() accounting: every transmitted field must be billed (reference it, or waive a constant-term field with //spanlint:bits %s — <why>) — dist.AuditPayloadFields enforces the same at run time",
			typeName, f.Name(), f.Name())
	}
	for name := range waived {
		if !hasField(st, name) {
			pass.Reportf(fd.Pos(), "//spanlint:bits waives %q but %s has no such field (stale waiver)", name, typeName)
		}
	}
}

// splitWaiver parses "f g — why" / "f g -- why" / "f g: why" into field
// names and justification.
func splitWaiver(args string) ([]string, string) {
	for _, sep := range []string{"—", "--", ":"} {
		if names, why, ok := strings.Cut(args, sep); ok {
			return strings.Fields(names), strings.TrimSpace(why)
		}
	}
	return strings.Fields(args), ""
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// fieldRefsInBody collects the field names of recvType selected anywhere
// in the method body — through the receiver or any other value of the
// type (a Bits method may delegate through a copy).
func fieldRefsInBody(pass *Pass, fd *ast.FuncDecl, recvType types.Type) map[string]bool {
	refs := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		xt := pass.TypesInfo.TypeOf(sel.X)
		if xt == nil {
			return true
		}
		if ptr, okp := xt.(*types.Pointer); okp {
			xt = ptr.Elem()
		}
		if !types.Identical(xt, recvType) {
			return true
		}
		// Selecting a promoted field of an embedded struct covers the
		// embedded field itself: resolve which direct field the selector
		// lands on (or passes through).
		if name, okn := directFieldFor(pass.Pkg, recvType, sel.Sel.Name); okn {
			refs[name] = true
		}
		return true
	})
	return refs
}

// directFieldFor maps a selector name to the direct field of t it names
// or promotes through.
func directFieldFor(pkg *types.Package, t types.Type, sel string) (string, bool) {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == sel {
			return f.Name(), true
		}
	}
	// Promoted: find the embedded field whose type (or method set)
	// carries sel.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(f.Type(), true, pkg, sel)
		if obj != nil {
			return f.Name(), true
		}
	}
	return "", false
}
