// Package unitchecker speaks cmd/go's vet tool protocol, so cmd/spanlint
// can run as `go vet -vettool=$(which spanlint) ./...`.
//
// The protocol (stable since Go 1.12; reverse-engineered here because the
// module vendors nothing): cmd/go first probes the tool with `-flags`
// (JSON description of supported flags, validated against user-passed
// analyzer flags) and `-V=full` (a content-addressed version line that
// keys the build cache, so lint results are cached and incremental like
// compiles). It then invokes the tool once per package in dependency
// order with a single argument, the path to a JSON config file naming the
// package's sources, its import map, and the compiler export data of
// every dependency. Dependency-only packages arrive with VetxOnly set —
// they exist to produce analysis facts, which this suite does not use, so
// they are acknowledged with an empty facts file. For target packages the
// tool typechecks from source against the export data, runs the suite,
// writes the facts file, prints findings to stderr as file:line:col
// lines, and exits nonzero when it found anything — which is exactly what
// makes `go vet -vettool` fail the build on a contract violation.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"distspanner/internal/analysis"
	"distspanner/internal/analysis/driver"
)

// Config is the vet config cmd/go writes for each package. Field set and
// meaning follow cmd/go/internal/work's vetConfig struct.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion emits the `-V=full` cache key: the tool name plus a hash
// of the executable, so editing spanlint invalidates cached vet results.
func PrintVersion(w io.Writer) error {
	name := "spanlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	_, err := fmt.Fprintf(w, "%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
	return err
}

// jsonFlag mirrors the schema cmd/go parses from `-flags` output.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// PrintFlags describes the analyzer flags to cmd/go so invocations like
// `go vet -vettool=spanlint -critical=... ./...` validate and forward.
func PrintFlags(w io.Writer, flags map[string]string) error {
	var out []jsonFlag
	for name, usage := range flags {
		out = append(out, jsonFlag{Name: name, Usage: usage})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Run executes the suite for one vet config file and returns the desired
// process exit code: 0 clean, 1 internal/typecheck error, 2 findings.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spanlint:", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spanlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Acknowledge the facts file first: cmd/go requires it to exist even
	// for packages we produce no findings (or facts) for.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "spanlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := check(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "spanlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func check(cfg *Config, analyzers []*analysis.Analyzer) ([]driver.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := driver.NewExportImporter(fset, cfg.PackageFile)
	conf := types.Config{
		Importer: importMapImporter{imp: imp, m: cfg.ImportMap},
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	if conf.Sizes == nil {
		conf.Sizes = types.SizesFor("gc", "amd64")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return driver.RunAnalyzers(fset, files, pkg, info, analyzers)
}

type importMapImporter struct {
	imp types.ImporterFrom
	m   map[string]string
}

func (i importMapImporter) Import(path string) (*types.Package, error) {
	if canon, ok := i.m[path]; ok {
		path = canon
	}
	return i.imp.ImportFrom(path, "", 0)
}
