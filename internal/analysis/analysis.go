// Package analysis is spanlint's analyzer suite: static enforcement of
// the repo's written determinism, metering, and cancellation contracts.
//
// Every subsystem since the trace digests leans on one invariant — a run
// is a pure function of (graph, params, seed), byte-identical across all
// three engines and both transports. The contract is stated in prose
// (ARCHITECTURE.md, the dist package docs) and enforced dynamically
// (cross-mode digest tests, dist.AuditPayloadFields), but a single
// unordered map iteration or stray time.Now in an algorithm receiver
// silently poisons cache identity and transport verification long before
// a test notices. The analyzers here make those violations build errors:
//
//   - Detmap: no map iteration in determinism-critical packages unless
//     the fold is provably order-insensitive or justified with a
//     //spanlint:ordered annotation.
//   - Detsource: no wall clock, global RNG, environment reads, or ad-hoc
//     goroutines inside Machine/PhasedProgram step functions and
//     algorithm receivers — only the per-vertex seeded RNG and
//     engine-serialized concurrency are legal there.
//   - Bitsacct: the static companion to dist.AuditPayloadFields — every
//     field of a payload struct must be referenced by its Bits method or
//     explicitly waived with //spanlint:bits, so CONGEST metering cannot
//     silently drop a transmitted field.
//   - Cancelprop: a function that accepts a cancel channel must propagate
//     it into every blocking call and Config it constructs (the sweep
//     timeout leak fixed in the step-engine PR was exactly this class).
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) so the analyzers read like
// standard vet checks, but it is self-contained: the module builds with
// no dependencies outside the standard library. cmd/spanlint drives the
// suite either standalone (internal/analysis/driver) or as a `go vet
// -vettool` unit checker (internal/analysis/unitchecker).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The zero value is not useful; the
// package-level variables Detmap, Detsource, Bitsacct, and Cancelprop are
// the suite.
type Analyzer struct {
	// Name is the analyzer's short lowercase identifier, used as the
	// diagnostic prefix and the flag namespace.
	Name string
	// Doc is the one-paragraph contract statement shown by -help.
	Doc string
	// Run executes the check over one package and reports findings via
	// pass.Report. The returned error is an analysis failure (not a
	// finding) and aborts the whole run.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed source, test files excluded by the drivers
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers set it; analyzers call
	// pass.Reportf instead.
	Report func(Diagnostic)

	directives directiveIndex // lazily built //spanlint: index
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // the reporting analyzer's name
	Message  string
}

// Reportf reports a formatted diagnostic at pos under the pass's
// analyzer name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full spanlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Detsource, Bitsacct, Cancelprop}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// pkgPath returns the package's import path with any test-variant suffix
// ("pkg [pkg.test]") stripped, so package scoping matches what go vet
// reports for test builds of the same package.
func (p *Pass) pkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// inFile reports whether pos lies in a file the suite analyzes: _test.go
// files are exempt from the determinism contracts (test scaffolding may
// iterate maps and read clocks freely — the contracts bind the code under
// test, not its harness).
func (p *Pass) inFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return !strings.HasSuffix(name, "_test.go")
}

// walkFiles runs fn over every non-test file of the pass.
func (p *Pass) walkFiles(fn func(*ast.File)) {
	for _, f := range p.Files {
		if p.inFile(f.Pos()) {
			fn(f)
		}
	}
}
