// Package atest is the golden-fixture harness for the spanlint analyzers,
// a stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under internal/analysis/testdata/src. The
// directory layer under src names the analyzer under test and the layers
// below it recreate the import-path suffixes the default scopes match
// (…/detmap/internal/gen is critical because it ends in /internal/gen),
// so fixtures exercise the real scoping rules instead of bypassing them.
// Go tooling never matches testdata directories with ./... patterns, so
// the deliberate violations inside are invisible to the repo's own build,
// vet, and lint runs — but `go list` still loads them when named
// explicitly, which is how the harness compiles them with full type
// information.
//
// Expectations are `// want "regexp"` comments trailing the line a
// diagnostic anchors to, exactly analysistest's convention: every
// diagnostic must match an unconsumed want on its line, and every want
// must be consumed.
package atest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"distspanner/internal/analysis"
	"distspanner/internal/analysis/driver"
)

// Run loads the fixture packages named by repo-root-relative patterns
// (e.g. "./internal/analysis/testdata/src/detmap/internal/gen"), applies
// the analyzers, and diffs the diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	root := moduleRoot(t)
	diags, err := driver.Run(root, patterns, analyzers)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	wants := collectWants(t, root, patterns)
	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic not reported:\n  %s:%d: want %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a regexp that must match a diagnostic message
// reported at file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func consume(wants []*want, d driver.Diagnostic) bool {
	file := filepath.Clean(d.Position.Filename)
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == d.Position.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every fixture file for `// want` comments. Each
// carries one or more quoted regexps; the comment's own line is the
// expected diagnostic line, so trailing placement is the norm.
func collectWants(t *testing.T, root string, patterns []string) []*want {
	t.Helper()
	fset := token.NewFileSet()
	var wants []*want
	for _, pat := range patterns {
		dir := filepath.Join(root, pat)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", path, err)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					line := fset.Position(c.Pos()).Line
					for _, expr := range quotedStrings(t, path, line, rest) {
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, expr, err)
						}
						wants = append(wants, &want{file: filepath.Clean(path), line: line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// quotedStrings unquotes the sequence of Go string literals after a want
// marker: `// want "a" "b"` carries two expectations.
func quotedStrings(t *testing.T, path string, line int, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", path, line, s)
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: unquoting %q: %v", path, line, q, err)
		}
		out = append(out, u)
		s = s[len(q):]
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
