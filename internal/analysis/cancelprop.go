package analysis

import (
	"go/ast"
	"go/types"
)

// Cancelprop enforces cancellation propagation: a function that accepts a
// cancel channel (`<-chan struct{}` / `chan struct{}`) took on the
// obligation to make everything it starts stoppable. The sweep-timeout
// leak fixed in the step-engine PR was exactly the failure mode this
// analyzer targets — a timeout fired, the sweep moved on, and the losing
// run kept a writer goroutine alive because the cancel channel never
// reached dist.Config.
//
// Inside any function (declaration or literal) with a cancel-channel
// parameter, three shapes are diagnostics, each waivable with
// `//spanlint:nocancel <why>` on the offending line:
//
//   - calling a function that itself accepts a cancel channel while
//     passing an explicit nil for it (the callee will block
//     uncancelably);
//   - constructing a composite literal of a struct that has a
//     cancel-channel field named Cancel without setting it (the
//     dist.Config / CoordConfig shape — a run is launched that the
//     caller's cancel can never reach);
//   - never mentioning the cancel parameter at all (the obligation was
//     accepted and dropped on the floor; name it _ if the signature is
//     fixed by an interface and cancellation is genuinely meaningless).
//
// Passing a *different* channel derived locally (a merged or wrapped
// canceler, as sweep.Single builds) is fine — the analyzer only demands
// that cancellation reach downstream, not that the same channel value
// flow through.
var Cancelprop = &Analyzer{
	Name: "cancelprop",
	Doc:  "requires functions accepting a cancel channel to propagate it into every blocking call and Config they build",
	Run:  runCancelprop,
}

func runCancelprop(pass *Pass) error {
	pass.walkFiles(func(f *ast.File) {
		// visit both declarations and function literals; literals
		// inherit nothing — each function owns only its own parameter.
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			var name string
			switch x := n.(type) {
			case *ast.FuncDecl:
				ftype, body, name = x.Type, x.Body, x.Name.Name
			case *ast.FuncLit:
				ftype, body, name = x.Type, x.Body, "func literal"
			default:
				return true
			}
			if body == nil {
				return true
			}
			params := cancelParams(pass, ftype)
			if len(params) == 0 {
				return true
			}
			checkCancelBody(pass, name, ftype, body, params)
			return true
		})
	})
	return nil
}

// cancelParams returns the objects of every cancel-channel parameter,
// skipping ones named _ (an explicit opt-out the language already
// provides).
func cancelParams(pass *Pass, ftype *ast.FuncType) []types.Object {
	var out []types.Object
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isCancelChan(t) {
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func checkCancelBody(pass *Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt, params []types.Object) {
	paramSet := make(map[types.Object]bool, len(params))
	for _, p := range params {
		paramSet[p] = true
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal with its own cancel parameter is checked
			// by its own visit; its body still counts as a use site for
			// ours (closures commonly capture the cancel).
		case *ast.Ident:
			if paramSet[pass.TypesInfo.ObjectOf(x)] {
				used = true
			}
		case *ast.CallExpr:
			checkNilCancelArg(pass, x)
		case *ast.CompositeLit:
			checkCancelField(pass, x)
		}
		return true
	})
	if !used {
		pos := ftype.Pos()
		if !pass.waived(pos, "nocancel") {
			pass.Reportf(pos, "%s accepts a cancel channel but never propagates it: everything this function starts outlives cancellation (pass it on, name it _, or waive with //spanlint:nocancel <why>)", name)
		}
	}
}

// checkNilCancelArg flags an explicit nil passed where the callee expects
// a cancel channel.
func checkNilCancelArg(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		pi := i
		if sig.Variadic() && pi >= n-1 {
			pi = n - 1
		}
		if !isCancelChan(sig.Params().At(pi).Type()) {
			continue
		}
		id, isIdent := arg.(*ast.Ident)
		if !isIdent || id.Name != "nil" {
			continue
		}
		if _, isNil := pass.TypesInfo.Uses[id].(*types.Nil); !isNil {
			continue
		}
		if !pass.waived(arg.Pos(), "nocancel") {
			pass.Reportf(arg.Pos(), "nil cancel passed to %s while a cancel channel is in scope: the callee will block uncancelably (pass the cancel through, or waive with //spanlint:nocancel <why>)", calleeName(call))
		}
	}
}

// checkCancelField flags a struct literal of a type with a Cancel
// cancel-channel field that the literal leaves unset.
func checkCancelField(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	hasCancel := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Cancel" && isCancelChan(f.Type()) {
			hasCancel = true
		}
	}
	if !hasCancel {
		return
	}
	for _, elt := range lit.Elts {
		kv, okkv := elt.(*ast.KeyValueExpr)
		if !okkv {
			// positional literal: all fields set by construction
			return
		}
		if id, okid := kv.Key.(*ast.Ident); okid && id.Name == "Cancel" {
			return
		}
	}
	if !pass.waived(lit.Pos(), "nocancel") {
		pass.Reportf(lit.Pos(), "%s built without Cancel while a cancel channel is in scope: the launched run cannot be stopped (set Cancel, or waive with //spanlint:nocancel <why>)",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
