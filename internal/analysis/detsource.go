package analysis

import (
	"go/ast"
	"go/types"
)

// Detsource forbids nondeterministic inputs and ad-hoc concurrency inside
// vertex step code: Machine/PhasedProgram implementations anywhere in the
// critical set, and everything in the algorithm packages (internal/core,
// internal/mds), whose whole surface is step code and its helpers.
//
// Step code runs once per vertex per round under three different
// schedulers and, through the sharded runner, on different processes; the
// transcripts must be byte-identical everywhere. The only legal
// randomness is the per-vertex seeded RNG (Ctx.Rand), the only legal
// clock is the round counter, and the only legal concurrency is what the
// engine serializes. Therefore, inside scope:
//
//   - time.Now / Since / Until / Sleep / After / Tick / NewTimer /
//     NewTicker read or wait on the wall clock;
//   - package-level math/rand and math/rand/v2 functions draw from the
//     process-global generator (methods on a *rand.Rand value are fine —
//     that is exactly what Ctx.Rand hands out);
//   - os.Getenv / LookupEnv / Environ smuggle host state into the run;
//   - `go` statements spawn concurrency the engine does not serialize,
//     so interleaving — and with it send order — becomes scheduling-
//     dependent.
//
// A site that is genuinely outside the replayed transcript (e.g. an
// engine-serialized measurement hook) can be waived with
// `//spanlint:impure <why>`.
var Detsource = &Analyzer{
	Name: "detsource",
	Doc:  "forbids wall clock, global RNG, environment reads, and goroutine spawns in Machine/PhasedProgram step code and algorithm packages",
	Run:  runDetsource,
}

// forbiddenCalls maps package path → function names that are illegal in
// step code. An empty list forbids every package-level function.
var forbiddenCalls = map[string][]string{
	"time":         {"Now", "Since", "Until", "Sleep", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker"},
	"os":           {"Getenv", "LookupEnv", "Environ", "ExpandEnv"},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

func runDetsource(pass *Pass) error {
	if !pass.critical() && !pass.algoPackage() {
		return nil
	}
	sh := findDistShape(pass.Pkg)
	wholePkg := pass.algoPackage()
	pass.walkFiles(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if wholePkg || isStepMethod(pass, sh, fd) {
				checkStepBody(pass, fd)
			}
		}
	})
	return nil
}

// isStepMethod reports whether fd is a method on a type that implements
// the engine's Machine or PhasedProgram interface — every method of such
// a type is step code (helpers included; they run inside Step).
func isStepMethod(pass *Pass, sh distShape, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return sh.implementsEither(t)
}

func checkStepBody(pass *Pass, fd *ast.FuncDecl) {
	where := fd.Name.Name
	if fd.Recv != nil {
		where = recvTypeName(fd) + "." + where
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if !pass.waived(x.Pos(), "impure") {
				pass.Reportf(x.Pos(), "goroutine spawned in step code %s: the engine serializes all vertex concurrency — interleaving here makes send order scheduling-dependent (//spanlint:impure <why> to waive)", where)
			}
		case *ast.CallExpr:
			pkg, name, ok := calleePkgFunc(pass, x)
			if !ok {
				return true
			}
			names, forbidden := forbiddenCalls[pkg]
			if !forbidden {
				return true
			}
			if names != nil && !contains(names, name) {
				return true
			}
			if !pass.waived(x.Pos(), "impure") {
				pass.Reportf(x.Pos(), "%s.%s in step code %s: only the per-vertex seeded RNG (Ctx.Rand) and round-count time are deterministic under replay (//spanlint:impure <why> to waive)", pkg, name, where)
			}
		}
		return true
	})
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function selected off an imported package.
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return "?"
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
