package analysis

import (
	"go/types"
	"strings"
)

// The analyzers recognize the engine package structurally, not by import
// path: any imported package (or the analyzed package itself) declaring
// an interface named Machine with a Step method, an interface named
// PhasedProgram with Emit/Process methods, or a Ctx type with Send — as
// internal/dist does — is treated as the engine. Structural detection is
// what lets the analysistest fixtures and the known-bad fixture module
// exercise the analyzers against a miniature stand-in dist package
// without import-path special cases.

// CriticalPackages is the default determinism-critical package set:
// packages whose map iteration order, clock reads, or RNG choices would
// leak into run output, trace digests, cache identity, or transport
// verification. Matched as import-path suffixes.
const CriticalPackages = "internal/core,internal/mds,internal/dist,internal/dist/wire,internal/dist/transportconf,internal/gen,internal/trace,internal/scenario,internal/service,internal/distrun"

// AlgoPackages is the default set of packages whose entire code is
// vertex-step code (algorithm receivers and their helpers): detsource
// forbids impure sources anywhere in them, not just inside Machine
// methods.
const AlgoPackages = "internal/core,internal/mds"

// Pkgs holds the configurable package scopes. cmd/spanlint exposes them
// as -critical and -algopkgs so the fixture module and external users can
// rescope the suite.
var Pkgs = struct {
	Critical string
	Algo     string
}{Critical: CriticalPackages, Algo: AlgoPackages}

// matchesScope reports whether path is in the comma-separated suffix
// list: an entry matches the whole path or a "/"-aligned suffix of it.
func matchesScope(path, list string) bool {
	for _, pat := range strings.Split(list, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// critical reports whether the pass's package is determinism-critical.
func (p *Pass) critical() bool { return matchesScope(p.pkgPath(), Pkgs.Critical) }

// algoPackage reports whether the pass's package is all-step-code.
func (p *Pass) algoPackage() bool { return matchesScope(p.pkgPath(), Pkgs.Algo) }

// distShape is the structurally detected engine surface visible to one
// package: the Machine/PhasedProgram interfaces for implements-checks and
// the Ctx type whose Send/SendRec sites carry metered payloads.
type distShape struct {
	machine *types.Interface // dist.Machine, nil if not visible
	phased  *types.Interface // dist.PhasedProgram, nil if not visible
	ctx     types.Type       // dist.Ctx named type, nil if not visible
}

// findDistShape scans the package and its direct imports for the engine
// surface.
func findDistShape(pkg *types.Package) distShape {
	var sh distShape
	scan := func(p *types.Package) {
		scope := p.Scope()
		if sh.machine == nil {
			sh.machine = namedInterface(scope, "Machine", "Step")
		}
		if sh.phased == nil {
			sh.phased = namedInterface(scope, "PhasedProgram", "Emit", "Process")
		}
		if sh.ctx == nil {
			if obj, ok := scope.Lookup("Ctx").(*types.TypeName); ok {
				if hasMethod(obj.Type(), "Send") || hasMethod(obj.Type(), "SendRec") {
					sh.ctx = obj.Type()
				}
			}
		}
	}
	scan(pkg)
	for _, imp := range pkg.Imports() {
		scan(imp)
	}
	return sh
}

// namedInterface looks up name in scope and returns its underlying
// interface if it declares all the listed methods.
func namedInterface(scope *types.Scope, name string, methods ...string) *types.Interface {
	obj, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for _, m := range methods {
		if !ifaceHasMethod(iface, m) {
			return nil
		}
	}
	return iface
}

func ifaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// implementsEither reports whether T (or *T) implements the Machine or
// PhasedProgram interface of the visible engine.
func (sh distShape) implementsEither(t types.Type) bool {
	for _, iface := range []*types.Interface{sh.machine, sh.phased} {
		if iface == nil {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// isCancelChan reports whether t is a cancel-channel type: chan struct{}
// with receive capability (<-chan struct{} or chan struct{}).
func isCancelChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
