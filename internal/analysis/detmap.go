package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap flags `range` over a map in determinism-critical packages. Map
// iteration order is randomized per run, so any map fold whose result
// depends on visit order — building a slice, emitting output, picking
// "the first" element, accumulating floats — silently breaks the
// (graph, params, seed) → bytes contract that trace digests, the result
// cache, and transport verification all assume.
//
// A map range is accepted without annotation only when the analyzer can
// prove the fold order-insensitive:
//
//   - the body contains only delete() calls, integer/bool accumulation
//     (x++, x--, x += intExpr, b = b || ...), or writes m[k] = expr
//     indexed by the iteration key itself with a side-effect-free
//     right-hand side (distinct iterations touch distinct keys, so the
//     writes commute) — and no condition reads a variable the loop
//     writes; or
//   - the body only appends to a slice that is sorted by a sort.* or
//     slices.Sort* call later in the same enclosing block (the canonical
//     collect-then-sort idiom).
//
// Everything else needs sorted keys or a `//spanlint:ordered <why>`
// justification stating why order cannot leak.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration in determinism-critical packages unless provably order-insensitive or justified with //spanlint:ordered",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) error {
	if !pass.critical() {
		return nil
	}
	pass.walkFiles(func(f *ast.File) {
		// Track enclosing blocks so the collect-then-sort proof can see
		// the statements that follow a range loop.
		var blocks []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				blocks = append(blocks, b)
				for _, st := range b.List {
					ast.Inspect(st, walk)
				}
				blocks = blocks[:len(blocks)-1]
				return false
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.waived(rng.Pos(), "ordered") {
				return true
			}
			if orderInsensitiveBody(pass, rng) {
				return true
			}
			if appendThenSorted(pass, rng, blocks) {
				return true
			}
			pass.Reportf(rng.Pos(), "range over map %s in determinism-critical package %s: iteration order is randomized — sort the keys, restructure the fold, or justify with //spanlint:ordered <why>",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), pass.pkgPath())
			return true
		}
		ast.Inspect(f, walk)
	})
	return nil
}

// orderInsensitiveBody conservatively proves a map-range body commutes:
// every statement is an allowed commutative update, and no branch
// condition reads state the loop writes (a condition over accumulated
// state re-introduces order sensitivity even when each arm commutes).
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt) bool {
	var keyObj types.Object
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = pass.TypesInfo.ObjectOf(id)
	}
	written := make(map[types.Object]bool)
	collectWrites(pass, rng.Body, written)
	ok := true
	var check func(stmts []ast.Stmt)
	check = func(stmts []ast.Stmt) {
		for _, st := range stmts {
			if !ok {
				return
			}
			switch s := st.(type) {
			case *ast.IncDecStmt:
				if !isIntLike(pass.TypesInfo.TypeOf(s.X)) {
					ok = false
				}
			case *ast.AssignStmt:
				if !commutativeAssign(pass, s) && !distinctKeyWrite(pass, s, keyObj, written) {
					ok = false
				}
			case *ast.ExprStmt:
				if !isDeleteCall(pass, s.X) {
					ok = false
				}
			case *ast.IfStmt:
				if s.Init != nil || !condIndependent(pass, s.Cond, written) {
					ok = false
					return
				}
				check(s.Body.List)
				switch e := s.Else.(type) {
				case nil:
				case *ast.BlockStmt:
					check(e.List)
				default:
					ok = false
				}
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE || s.Label != nil {
					ok = false
				}
			default:
				ok = false
			}
		}
	}
	check(rng.Body.List)
	return ok
}

// commutativeAssign accepts += / -= / |= on integers, |= / &&-style bool
// folds written as b = b || e, and max/min folds are NOT accepted (their
// conditions read accumulated state; annotate those).
func commutativeAssign(pass *Pass, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lt := pass.TypesInfo.TypeOf(s.Lhs[0])
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (addition order changes rounding).
		return isIntLike(lt)
	case token.ASSIGN:
		// b = b || e and b = b && e commute when e is pure of loop
		// writes; accept the syntactic form with the ranged-over bool on
		// its own left.
		if bin, okb := s.Rhs[0].(*ast.BinaryExpr); okb && (bin.Op == token.LOR || bin.Op == token.LAND) {
			return isBoolType(lt) && sameIdent(s.Lhs[0], bin.X)
		}
		return false
	}
	return false
}

// distinctKeyWrite accepts `m[k] = expr` where k is the iteration key:
// every iteration writes a different key, so the writes commute as long
// as the right-hand side is pure (no calls except conversions/len/cap, no
// reads of loop-written state — a RHS over accumulated state would smuggle
// visit order back in).
func distinctKeyWrite(pass *Pass, s *ast.AssignStmt, keyObj types.Object, written map[types.Object]bool) bool {
	if keyObj == nil || s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	idx, ok := s.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(id) != keyObj {
		return false
	}
	// The target map itself must not be the loop's own iteration subject
	// rewritten — it may be any map, but its base must be a stable lvalue.
	if _, okRoot := rootIdent(idx.X); !okRoot {
		return false
	}
	return exprPure(pass, s.Rhs[0], written)
}

// exprPure reports whether e has no side effects and reads nothing the
// loop writes: identifiers outside written, selectors/indexes of such,
// literals, operators, and calls that are type conversions or len/cap.
func exprPure(pass *Pass, e ast.Expr, written map[types.Object]bool) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(x); obj != nil && written[obj] {
				pure = false
			}
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, okb := pass.TypesInfo.Uses[id].(*types.Builtin); okb {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
		}
		return pure
	})
	return pure
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

func isDeleteCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

func isIntLike(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func isBoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsBoolean != 0
}

// collectWrites records every object assigned or inc/dec'd in the body.
func collectWrites(pass *Pass, body *ast.BlockStmt, out map[types.Object]bool) {
	record := func(e ast.Expr) {
		if id, ok := rootIdent(e); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(s.X)
		}
		return true
	})
}

// rootIdent walks to the base identifier of x, x.f, x[i].
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// condIndependent reports whether the condition reads no object the loop
// body writes.
func condIndependent(pass *Pass, cond ast.Expr, written map[types.Object]bool) bool {
	ok := true
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, isId := n.(*ast.Ident); isId {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && written[obj] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// appendThenSorted proves the collect-then-sort idiom: the body is
// exactly `s = append(s, ...)` and some later statement in an enclosing
// block passes s (or &s) to a function in package sort or slices.
func appendThenSorted(pass *Pass, rng *ast.RangeStmt, blocks []*ast.BlockStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, okb := pass.TypesInfo.Uses[fn].(*types.Builtin); !okb || b.Name() != "append" {
		return false
	}
	// The destination may be any stable lvalue (keys, v.nbrs, ...); match
	// append's first argument and the later sort argument by canonical
	// expression text.
	dst := types.ExprString(asg.Lhs[0])
	if len(call.Args) == 0 || types.ExprString(call.Args[0]) != dst {
		return false
	}
	// Scan statements after the loop in every enclosing block for a
	// sort.*/slices.* call taking dst.
	for _, b := range blocks {
		after := false
		for _, st := range b.List {
			if !after {
				if containsPos(st, rng.Pos()) {
					after = true
				}
				continue
			}
			if stmtSorts(pass, st, dst) {
				return true
			}
		}
	}
	return false
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

func stmtSorts(pass *Pass, st ast.Stmt, dst string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		pkg, _, ok := calleePkgFunc(pass, call)
		if !ok {
			return true
		}
		switch pkg {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == dst {
				found = true
			}
		}
		return !found
	})
	return found
}
