// Reproduction CI: one integration test per paper claim, in miniature.
// These are fast versions of the E1-E15 experiment assertions, so a plain
// `go test ./...` re-validates the reproduction end to end.
package distspanner_test

import (
	"math"
	"testing"

	"distspanner"
	"distspanner/internal/core"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/lb"
	"distspanner/internal/span"
)

func TestReproFig1Dichotomy(t *testing.T) {
	// Lemma 2.3: disjoint => sparse 5-spanner; conflicts force β² D-edges.
	l, beta := 3, 4
	a, b := lb.DisjointInputs(l*l, 0.4, 1)
	f, err := lb.NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyClaim22(); err != nil {
		t.Fatal(err)
	}
	if !span.IsDirectedKSpanner(f.G, f.NonDSpanner(), 5) {
		t.Fatal("disjoint side broken")
	}
	a2, b2 := lb.IntersectingInputs(l*l, 1, 0.3, 2)
	f2, err := lb.NewFig1(l, beta, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.ForcedDEdges().Len() != beta*beta {
		t.Fatal("conflict must force β² D-edges")
	}
}

func TestReproWeightedDichotomy(t *testing.T) {
	// Theorem 2.9: zero-cost 4-spanner iff disjoint.
	a, b := lb.DisjointInputs(9, 0.4, 1)
	f, err := lb.NewFig2(3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsDirectedKSpanner(f.G, f.ZeroCostSpanner(), 4) {
		t.Fatal("disjoint side broken")
	}
	a2, b2 := lb.IntersectingInputs(9, 1, 0.3, 2)
	f2, err := lb.NewFig2(3, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if span.IsDirectedKSpanner(f2.G, f2.ZeroCostSpanner(), 4) {
		t.Fatal("intersecting side broken")
	}
}

func TestReproClaim31(t *testing.T) {
	// Figure 3: min-cost 2-spanner of G_S equals MVC of G.
	g := gen.GNP(5, 0.5, 1)
	m := lb.NewMVCGadget(g, false)
	mvc := len(exact.MinVertexCover(g))
	_, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != float64(mvc) {
		t.Fatalf("gadget equality broken: %f vs %d", cost, mvc)
	}
}

func TestReproTheorem13(t *testing.T) {
	// The main algorithm: guaranteed ratio and Claim 4.4 invariant over
	// several seeds.
	g := distspanner.RandomGraph(24, 0.3, 3)
	bound := 80 * (math.Log2(math.Max(2, float64(g.M())/float64(g.N()))) + 2)
	for seed := int64(0); seed < 5; seed++ {
		res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !distspanner.VerifySpanner(g, res.Spanner, 2) {
			t.Fatal("invalid spanner")
		}
		if res.Fallbacks != 0 {
			t.Fatal("Claim 4.4 fallback")
		}
		if res.Cost/float64(g.N()-1) > bound {
			t.Fatal("ratio bound exceeded")
		}
	}
}

func TestReproTheorem51(t *testing.T) {
	// MDS: guaranteed O(log Δ) ratio and CONGEST legality.
	g := distspanner.RandomGraph(20, 0.25, 4)
	opt := len(exact.MinDominatingSet(g))
	bound := 8 * (math.Log2(float64(g.MaxDegree())+1) + 2)
	for seed := int64(0); seed < 5; seed++ {
		res, err := distspanner.BuildMDS(g, distspanner.MDSOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if float64(len(res.DominatingSet))/float64(opt) > bound {
			t.Fatal("MDS ratio bound exceeded")
		}
	}
}

func TestReproTheorem12(t *testing.T) {
	// (1+ε)-approximation against exact OPT.
	g := distspanner.CompleteBipartite(3, 3)
	const eps = 0.5
	res, err := distspanner.BuildEpsilonSpanner(g, distspanner.EpsilonOptions{K: 2, Eps: eps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > (1+eps)*opt+1e-9 {
		t.Fatal("(1+ε) bound exceeded")
	}
}

func TestReproSection13Overhead(t *testing.T) {
	// CONGEST execution: identical output, Θ(Δ) subrounds, enforced budget.
	g := distspanner.RandomGraph(16, 0.4, 5)
	local, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	congest, err := distspanner.Build2SpannerCongest(g, distspanner.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !local.Spanner.Equal(congest.Spanner) {
		t.Fatal("CONGEST output differs from LOCAL")
	}
	if congest.Stats.Rounds != local.Stats.Rounds*congest.Subrounds {
		t.Fatal("subround accounting broken")
	}
}

func TestReproLemma32Forward(t *testing.T) {
	// The gadget composed with the weighted algorithm yields a valid
	// distributed vertex cover.
	g := gen.ConnectedGNP(12, 0.35, 7)
	res, err := lb.MVCViaSpanner(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := lb.NewMVCGadget(g, false)
	if !m.IsVertexCover(res.Cover) {
		t.Fatal("reduction output is not a cover")
	}
}

func TestReproCommComplexityCertificate(t *testing.T) {
	for n := 1; n <= 8; n++ {
		if err := lb.VerifyDisjointnessFoolingSet(n); err != nil {
			t.Fatal(err)
		}
	}
}
