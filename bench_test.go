// Benchmarks E1-E13: one per experiment in EXPERIMENTS.md, each
// regenerating the measured side of a figure or theorem of the paper.
// Custom metrics report the quantity the experiment is about (approximation
// ratios, rounds, message bits) alongside the usual ns/op.
package distspanner_test

import (
	"math"
	"testing"

	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/lb"
	"distspanner/internal/localmodel"
	"distspanner/internal/mds"
	"distspanner/internal/span"
)

// BenchmarkE1_Fig1Dichotomy builds G(ℓ,β) and machine-checks the Lemma 2.3
// spanner-size dichotomy (Figure 1).
func BenchmarkE1_Fig1Dichotomy(b *testing.B) {
	const l, beta = 4, 6
	for i := 0; i < b.N; i++ {
		a, bb := lb.DisjointInputs(l*l, 0.4, int64(i))
		f, err := lb.NewFig1(l, beta, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		if !span.IsDirectedKSpanner(f.G, f.NonDSpanner(), 5) {
			b.Fatal("dichotomy broken: disjoint side")
		}
		a2, b2 := lb.IntersectingInputs(l*l, 1, 0.3, int64(i))
		f2, err := lb.NewFig1(l, beta, a2, b2)
		if err != nil {
			b.Fatal(err)
		}
		if f2.ForcedDEdges().Len() != beta*beta {
			b.Fatal("dichotomy broken: forced edges")
		}
	}
}

// BenchmarkE2_RandomizedLB runs the metered two-party simulation on
// G(ℓ,β), reporting the bits that crossed the Alice/Bob cut.
func BenchmarkE2_RandomizedLB(b *testing.B) {
	const l, beta = 4, 6
	a, bb := lb.DisjointInputs(l*l, 0.4, 1)
	f, err := lb.NewFig1(l, beta, a, bb)
	if err != nil {
		b.Fatal(err)
	}
	comm, _ := f.G.Underlying()
	cut := f.CutSide()
	var cutBits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := lb.MeterLearnBall(comm, cut, 5, 32, l*l)
		if err != nil {
			b.Fatal(err)
		}
		cutBits = rep.Stats.CutBits
	}
	b.ReportMetric(float64(cutBits), "cutBits")
	b.ReportMetric(lb.RandomizedDirectedRounds(1<<14, 4), "thmRounds@n=16k,a=4")
}

// BenchmarkE3_DeterministicLB checks the gap-disjointness dichotomy
// (Lemma 2.6) on a β <= ℓ instance.
func BenchmarkE3_DeterministicLB(b *testing.B) {
	const l, beta = 12, 5
	for i := 0; i < b.N; i++ {
		af, bf := lb.FarFromDisjointInputs(l*l, int64(i))
		f, err := lb.NewFig1(l, beta, af, bf)
		if err != nil {
			b.Fatal(err)
		}
		if float64(f.ForcedDEdges().Len()) < float64(beta*beta*l*l)/12 {
			b.Fatal("gap dichotomy broken")
		}
	}
	b.ReportMetric(lb.DeterministicDirectedRounds(1<<14, 4), "thmRounds@n=16k,a=4")
}

// BenchmarkE4_WeightedLB builds G_w and checks the 0-cost-iff-disjoint
// property (Theorem 2.9) plus the undirected variant (Theorem 2.10).
func BenchmarkE4_WeightedLB(b *testing.B) {
	const l = 5
	for i := 0; i < b.N; i++ {
		a, bb := lb.DisjointInputs(l*l, 0.4, int64(i))
		f, err := lb.NewFig2(l, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		if !span.IsDirectedKSpanner(f.G, f.ZeroCostSpanner(), 4) {
			b.Fatal("Fig2 disjoint side broken")
		}
		fu, err := lb.NewFig2Undirected(3, 5, a[:9], bb[:9])
		if err != nil {
			b.Fatal(err)
		}
		if !span.IsKSpanner(fu.G, fu.ZeroCostSpanner(), 5) {
			b.Fatal("Fig2 undirected broken")
		}
	}
	b.ReportMetric(lb.WeightedDirectedRounds(1<<14), "thmRounds@n=16k")
}

// BenchmarkE5_MVCGadget verifies the Claim 3.1 equality: min-cost
// 2-spanner of G_S equals MVC of G.
func BenchmarkE5_MVCGadget(b *testing.B) {
	g := gen.GNP(5, 0.5, 3)
	m := lb.NewMVCGadget(g, false)
	mvc := len(exact.MinVertexCover(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		if cost != float64(mvc) {
			b.Fatal("Claim 3.1 equality broken")
		}
	}
	b.ReportMetric(float64(mvc), "MVC")
}

// BenchmarkE6_TwoSpanner runs the headline algorithm (Theorem 1.3) on a
// random graph, reporting size ratio against the n-1 lower bound and the
// round count.
func BenchmarkE6_TwoSpanner(b *testing.B) {
	g := gen.ConnectedGNP(40, 0.15, 1)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.TwoSpanner(g, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Fallbacks != 0 {
			b.Fatal("Claim 4.4 fallback")
		}
	}
	b.ReportMetric(float64(res.Spanner.Len())/float64(g.N()-1), "sizeVsLB")
	b.ReportMetric(float64(res.Stats.Rounds), "rounds")
}

// BenchmarkE7_Directed runs the directed variant (Theorem 4.9).
func BenchmarkE7_Directed(b *testing.B) {
	d := gen.RandomDigraph(12, 1.1, 1) // complete bidirected
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.DirectedTwoSpanner(d, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Spanner.Len())/float64(d.M()), "keptFrac")
}

// BenchmarkE8_Weighted runs the weighted variant (Theorem 4.12).
func BenchmarkE8_Weighted(b *testing.B) {
	g := gen.RandomWeights(gen.ConnectedGNP(30, 0.25, 3), 1, 16, 7)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.TwoSpanner(g, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cost, "cost")
}

// BenchmarkE9_ClientServer runs the client-server variant (Theorem 4.15).
func BenchmarkE9_ClientServer(b *testing.B) {
	g := gen.ConnectedGNP(30, 0.25, 5)
	clients, servers := gen.ClientServerSplit(g, 0.5, 0.7, 11)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.ClientServerTwoSpanner(g, clients, servers, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Spanner.Len()), "edges")
}

// BenchmarkE10_MDS runs the CONGEST dominating-set algorithm (Theorem
// 5.1), reporting the CONGEST-relevant max edge-round bits.
func BenchmarkE10_MDS(b *testing.B) {
	g := gen.ConnectedGNP(50, 0.12, 2)
	var res *mds.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = mds.Run(g, mds.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.DominatingSet)), "dsSize")
	b.ReportMetric(float64(res.Stats.MaxEdgeRoundBits), "maxEdgeRoundBits")
}

// BenchmarkE11_EpsilonApprox runs the (1+ε) algorithm (Theorem 1.2) on a
// small instance and asserts the bound against exact OPT.
func BenchmarkE11_EpsilonApprox(b *testing.B) {
	g := gen.Clique(8)
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	const eps = 0.5
	b.ResetTimer()
	var res *localmodel.Result
	for i := 0; i < b.N; i++ {
		res, err = localmodel.EpsilonSpanner(g, localmodel.Options{K: 2, Eps: eps, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost > (1+eps)*opt+1e-9 {
			b.Fatal("(1+eps) bound broken")
		}
	}
	b.ReportMetric(res.Cost/opt, "ratio")
	b.ReportMetric(float64(res.Colors), "colors")
}

// BenchmarkE12_Separations contrasts the LOCAL-sized messages of the core
// algorithm with the CONGEST messages of MDS on the same dense graph.
func BenchmarkE12_Separations(b *testing.B) {
	g := gen.Clique(16)
	var coreBits, mdsBits int
	for i := 0; i < b.N; i++ {
		rc, err := core.TwoSpanner(g, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rm, err := mds.Run(g, mds.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		coreBits, mdsBits = rc.Stats.MaxEdgeRoundBits, rm.Stats.MaxEdgeRoundBits
	}
	b.ReportMetric(float64(coreBits), "coreMaxBits")
	b.ReportMetric(float64(mdsBits), "mdsMaxBits")
	b.ReportMetric(float64(8*dist.IDBits(g.N())), "congestBudget")
}

// BenchmarkE13_BaswanaSen builds (2k-1)-spanners and reports the implied
// approximation ratio against the n-1 bound.
func BenchmarkE13_BaswanaSen(b *testing.B) {
	g := gen.ConnectedGNP(200, 0.3, 1)
	const k = 2
	var size int
	for i := 0; i < b.N; i++ {
		res := baseline.BaswanaSen(g, k, int64(i))
		size = res.Spanner.Len()
	}
	b.ReportMetric(float64(size)/float64(g.N()-1), "approxRatio")
	b.ReportMetric(math.Pow(float64(g.N()), 1.0/k), "n^(1/k)")
}
