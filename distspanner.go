// Package distspanner is a Go implementation of "Distributed Spanner
// Approximation" (Censor-Hillel and Dory, PODC 2018): distributed
// algorithms for approximating minimum k-spanners and minimum dominating
// sets, plus the paper's lower-bound constructions and the two-party
// simulation harness behind its CONGEST hardness results.
//
// The headline algorithm (Theorem 1.3) builds a 2-spanner with a
// guaranteed O(log(m/n)) approximation ratio in O(log n · log Δ) LOCAL
// rounds w.h.p., by combining locally-densest stars with a
// random-permutation voting scheme. Variants cover directed (Theorem 4.9),
// weighted (Theorem 4.12) and client-server (Theorem 4.15) spanners, a
// CONGEST O(log Δ)-guaranteed minimum dominating set (Theorem 5.1), and a
// LOCAL (1+ε)-approximation for minimum k-spanners via network
// decomposition (Theorem 1.2).
//
// Algorithms execute on a synchronous message-passing simulator: message
// sizes are metered in bits so LOCAL versus CONGEST behaviour is
// measurable, and runs are deterministic for a fixed seed. The engine
// offers three scheduling strategies (Options.ExecMode): the classic
// barrier engine and the event-driven scheduler run every vertex as a
// goroutine, while the state-machine engine (the paper algorithms'
// default) runs with no per-vertex goroutines at all, scaling to millions
// of vertices — bit-identical results in every mode, very different wall
// clock.
//
// Quick start:
//
//	g := distspanner.RandomGraph(64, 0.2, 1)
//	res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 1})
//	if err != nil { ... }
//	ok := distspanner.VerifySpanner(g, res.Spanner, 2) // true
package distspanner

import (
	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/localmodel"
	"distspanner/internal/mds"
	"distspanner/internal/span"
)

// Core graph types, re-exported for the public API.
type (
	// Graph is a simple undirected graph with indexed edges and optional
	// non-negative weights.
	Graph = graph.Graph
	// Digraph is a simple directed graph.
	Digraph = graph.Digraph
	// EdgeSet is a bitset over edge indices, used for spanners and covers.
	EdgeSet = graph.EdgeSet
	// Edge is a (directed or canonical undirected) vertex pair.
	Edge = graph.Edge
)

// NewGraph returns an empty undirected graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph { return graph.NewDigraph(n) }

// NewEdgeSet returns an empty edge set over a universe of m edges.
func NewEdgeSet(m int) *EdgeSet { return graph.NewEdgeSet(m) }

// Options configures the distributed spanner algorithms.
type Options = core.Options

// ExecMode selects the simulation engine's scheduling strategy for
// Options.ExecMode / MDSOptions.ExecMode. Every mode produces
// bit-identical results and statistics for a fixed seed; they differ only
// in wall-clock cost (see internal/dist and ARCHITECTURE.md).
type ExecMode = dist.Mode

// Execution modes, re-exported for Options.ExecMode.
const (
	// ModeAuto picks the engine automatically: the paper algorithms run on
	// the goroutine-free state-machine engine; procedure-style protocols
	// switch on network size (the event-driven scheduler at or above
	// dist.EventThreshold vertices, the barrier engine below it).
	ModeAuto = dist.ModeAuto
	// ModeBarrier runs vertices freely between central round barriers.
	ModeBarrier = dist.ModeBarrier
	// ModeEvent schedules only active vertices each round — quiet
	// vertices cost zero wakeups.
	ModeEvent = dist.ModeEvent
	// ModeStep steps vertices as explicit state machines in a worker loop:
	// no per-vertex goroutine at all, which is what scales runs to
	// millions of vertices on one box.
	ModeStep = dist.ModeStep
)

// Result reports a distributed spanner construction: the spanner, its
// cost, the engine's round/message/bit statistics, and the iteration
// count.
type Result = core.Result

// Build2Spanner runs the paper's main algorithm (Theorem 1.3) on an
// undirected graph; weighted graphs automatically use the weighted variant
// (Theorem 4.12, ratio O(log Δ)).
func Build2Spanner(g *Graph, opts Options) (*Result, error) {
	return core.TwoSpanner(g, opts)
}

// BuildDirected2Spanner runs the directed variant (Theorem 4.9) with the
// same guarantees as the undirected case.
func BuildDirected2Spanner(d *Digraph, opts Options) (*Result, error) {
	return core.DirectedTwoSpanner(d, opts)
}

// BuildClientServer2Spanner runs the client-server variant (Theorem 4.15):
// cover every client edge using only server edges, with ratio
// O(min{log(|C|/|V(C)|), log Δ_S}).
func BuildClientServer2Spanner(g *Graph, clients, servers *EdgeSet, opts Options) (*Result, error) {
	return core.ClientServerTwoSpanner(g, clients, servers, opts)
}

// Build2SpannerAugment solves the 2-spanner augmentation problem of the
// Section 3 remarks: given already-owned initial edges, add the fewest
// further edges so the union 2-spans g. Cost counts only additions.
func Build2SpannerAugment(g *Graph, initial *EdgeSet, opts Options) (*Result, error) {
	return core.TwoSpannerAugment(g, initial, opts)
}

// StretchStats summarizes a spanner's per-edge stretch distribution.
type StretchStats = span.StretchStats

// AnalyzeStretch computes the stretch distribution of H over g's edges.
func AnalyzeStretch(g *Graph, H *EdgeSet, cap int) StretchStats {
	return span.Stretch(g, H, cap)
}

// MDSOptions configures the dominating-set algorithm.
type MDSOptions = mds.Options

// MDSResult reports the dominating set and CONGEST statistics.
type MDSResult = mds.Result

// BuildMDS runs the CONGEST minimum dominating set algorithm (Theorem
// 5.1): guaranteed O(log Δ) ratio, O(log n log Δ) rounds w.h.p., O(log n)
// bits per edge per round (enforced at runtime).
func BuildMDS(g *Graph, opts MDSOptions) (*MDSResult, error) {
	return mds.Run(g, opts)
}

// EpsilonOptions configures the (1+ε)-approximation.
type EpsilonOptions = localmodel.Options

// EpsilonResult reports the (1+ε) spanner and the LOCAL-model accounting
// of its network-decomposition simulation.
type EpsilonResult = localmodel.Result

// BuildEpsilonSpanner runs the LOCAL-model (1+ε)-approximation for minimum
// k-spanners (Theorem 1.2). Local computations are exponential by design
// (the LOCAL model allows it); intended for small instances.
func BuildEpsilonSpanner(g *Graph, opts EpsilonOptions) (*EpsilonResult, error) {
	return localmodel.EpsilonSpanner(g, opts)
}

// CongestResult extends Result with the fragmentation accounting of the
// CONGEST execution.
type CongestResult = core.CongestResult

// Build2SpannerCongest runs the unweighted 2-spanner algorithm in the
// CONGEST model: identical logic and output to Build2Spanner, with every
// message fragmented into O(log n)-bit chunks (enforced at runtime) at the
// price of Θ(Δ) physical rounds per logical round — the overhead the
// paper's Section 1.3 discussion describes.
func Build2SpannerCongest(g *Graph, opts Options) (*CongestResult, error) {
	return core.TwoSpannerCongest(g, opts)
}

// KortsarzPeleg runs the sequential greedy 2-spanner baseline [46], the
// O(log(m/n)) benchmark the distributed algorithm matches.
func KortsarzPeleg(g *Graph) *EdgeSet { return baseline.KortsarzPeleg(g) }

// GreedyKSpanner runs the classic sequential greedy spanner (girth > k+1,
// worst-case size O(n^{1+2/(k+1)})): the sparsity-oriented counterpoint to
// the paper's per-instance approximation objective.
func GreedyKSpanner(g *Graph, k int) *EdgeSet { return baseline.GreedyKSpanner(g, k) }

// FaultTolerant2Spanner builds an f-vertex-fault-tolerant 2-spanner (the
// generalization the paper attributes to Dinitz-Krauthgamer [21]): for
// every fault set F with |F| <= f, H - F still 2-spans G - F.
func FaultTolerant2Spanner(g *Graph, f int) *EdgeSet {
	return baseline.FaultTolerant2Spanner(g, f)
}

// VerifyFaultTolerant2Spanner exhaustively checks f-vertex-fault
// tolerance. Exponential in f; for small instances.
func VerifyFaultTolerant2Spanner(g *Graph, h *EdgeSet, f int) bool {
	return baseline.IsFaultTolerant2Spanner(g, h, f)
}

// BaswanaSenResult reports a Baswana-Sen construction.
type BaswanaSenResult = baseline.BaswanaSenResult

// BaswanaSen builds a (2k-1)-spanner of expected size O(k·n^{1+1/k}) in k
// CONGEST rounds [7, 28]: the undirected O(n^{1/k})-approximation baseline.
func BaswanaSen(g *Graph, k int, seed int64) *BaswanaSenResult {
	return baseline.BaswanaSen(g, k, seed)
}

// VerifySpanner reports whether H is a k-spanner of g.
func VerifySpanner(g *Graph, H *EdgeSet, k int) bool { return span.IsKSpanner(g, H, k) }

// VerifyDirectedSpanner reports whether H is a directed k-spanner of d.
func VerifyDirectedSpanner(d *Digraph, H *EdgeSet, k int) bool {
	return span.IsDirectedKSpanner(d, H, k)
}

// VerifyClientServer reports whether H solves the client-server instance.
func VerifyClientServer(g *Graph, clients, servers, H *EdgeSet, k int) bool {
	return span.ClientServerValid(g, clients, servers, H, k)
}

// SpannerCost returns the total weight of H (its size when unweighted).
func SpannerCost(g *Graph, H *EdgeSet) float64 { return span.Cost(g, H) }

// Convenience generators (deterministic in their seeds).

// RandomGraph returns a connected Erdős–Rényi graph G(n, p) plus a random
// spanning backbone.
func RandomGraph(n int, p float64, seed int64) *Graph { return gen.ConnectedGNP(n, p, seed) }

// RandomDigraph returns a random simple digraph with edge probability p
// per ordered pair.
func RandomDigraph(n int, p float64, seed int64) *Digraph { return gen.RandomDigraph(n, p, seed) }

// CompleteBipartite returns K_{a,b}, the classic dense 2-spanner workload.
func CompleteBipartite(a, b int) *Graph { return gen.CompleteBipartite(a, b) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// RandomWeights assigns uniform random weights in [lo, hi] to g's edges.
func RandomWeights(g *Graph, lo, hi float64, seed int64) *Graph {
	return gen.RandomWeights(g, lo, hi, seed)
}

// ClientServerSplit randomly partitions g's edges into client and server
// roles (every edge gets at least one role).
func ClientServerSplit(g *Graph, pc, ps float64, seed int64) (clients, servers *EdgeSet) {
	return gen.ClientServerSplit(g, pc, ps, seed)
}

// GeometricGraph returns a random geometric graph (n uniform points in the
// unit square, edges within the given radius): the standard sensor-network
// workload.
func GeometricGraph(n int, radius float64, seed int64) *Graph {
	return gen.Geometric(n, radius, seed)
}

// PreferentialAttachment returns a Barabási-Albert graph with heavy-tailed
// degrees — the workload where dense stars are plentiful.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	return gen.PreferentialAttachment(n, m, seed)
}
