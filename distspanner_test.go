package distspanner_test

import (
	"testing"

	"distspanner"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g := distspanner.RandomGraph(40, 0.2, 1)
	res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifySpanner(g, res.Spanner, 2) {
		t.Fatal("public API produced an invalid spanner")
	}
	if distspanner.SpannerCost(g, res.Spanner) != res.Cost {
		t.Fatal("cost accessors disagree")
	}
}

func TestPublicAPIDirected(t *testing.T) {
	d := distspanner.RandomDigraph(15, 0.3, 2)
	res, err := distspanner.BuildDirected2Spanner(d, distspanner.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifyDirectedSpanner(d, res.Spanner, 2) {
		t.Fatal("invalid directed spanner via public API")
	}
}

func TestPublicAPIClientServer(t *testing.T) {
	g := distspanner.RandomGraph(20, 0.3, 3)
	clients, servers := distspanner.ClientServerSplit(g, 0.5, 0.8, 1)
	res, err := distspanner.BuildClientServer2Spanner(g, clients, servers, distspanner.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifyClientServer(g, clients, servers, res.Spanner, 2) {
		t.Fatal("invalid client-server solution via public API")
	}
}

func TestPublicAPIMDS(t *testing.T) {
	g := distspanner.RandomGraph(30, 0.15, 4)
	res, err := distspanner.BuildMDS(g, distspanner.MDSOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DominatingSet) == 0 {
		t.Fatal("empty dominating set")
	}
}

func TestPublicAPIEpsilon(t *testing.T) {
	g := distspanner.CompleteBipartite(3, 3)
	res, err := distspanner.BuildEpsilonSpanner(g, distspanner.EpsilonOptions{K: 2, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifySpanner(g, res.Spanner, 2) {
		t.Fatal("invalid epsilon spanner")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := distspanner.RandomGraph(25, 0.3, 5)
	if h := distspanner.KortsarzPeleg(g); !distspanner.VerifySpanner(g, h, 2) {
		t.Fatal("KP baseline invalid")
	}
	bs := distspanner.BaswanaSen(g, 2, 1)
	if !distspanner.VerifySpanner(g, bs.Spanner, bs.Stretch) {
		t.Fatal("Baswana-Sen baseline invalid")
	}
}

func TestPublicAPIGraphConstruction(t *testing.T) {
	g := distspanner.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	res, err := distspanner.Build2Spanner(g, distspanner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.Len() != 2 {
		t.Fatalf("path spanner = %d edges, want 2", res.Spanner.Len())
	}
	h := distspanner.Hypercube(3)
	if h.N() != 8 {
		t.Fatal("hypercube wrong")
	}
	w := distspanner.RandomWeights(distspanner.RandomGraph(10, 0.3, 1), 1, 5, 2)
	if !w.Weighted() {
		t.Fatal("weights not applied")
	}
	s := distspanner.NewEdgeSet(4)
	s.Add(2)
	if !s.Has(2) {
		t.Fatal("edge set broken")
	}
	d := distspanner.NewDigraph(2)
	d.AddEdge(0, 1)
	if d.M() != 1 {
		t.Fatal("digraph broken")
	}
}

func TestPublicAPICongest(t *testing.T) {
	g := distspanner.RandomGraph(18, 0.3, 6)
	local, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	congest, err := distspanner.Build2SpannerCongest(g, distspanner.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !local.Spanner.Equal(congest.Spanner) {
		t.Fatal("CONGEST facade output differs from LOCAL")
	}
	if congest.Subrounds < 1 || congest.Stats.MaxEdgeRoundBits > congest.Bandwidth {
		t.Fatal("CONGEST accounting broken")
	}
}

func TestPublicAPIGreedyKSpanner(t *testing.T) {
	g := distspanner.RandomGraph(30, 0.3, 3)
	h := distspanner.GreedyKSpanner(g, 3)
	if !distspanner.VerifySpanner(g, h, 3) {
		t.Fatal("greedy k-spanner invalid via facade")
	}
}

func TestPublicAPINewGenerators(t *testing.T) {
	geo := distspanner.GeometricGraph(50, 0.3, 1)
	if geo.N() != 50 || geo.M() == 0 {
		t.Fatal("geometric generator broken")
	}
	ba := distspanner.PreferentialAttachment(60, 2, 2)
	if !ba.Connected() {
		t.Fatal("preferential attachment must be connected")
	}
	res, err := distspanner.Build2Spanner(ba, distspanner.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifySpanner(ba, res.Spanner, 2) {
		t.Fatal("spanner on BA graph invalid")
	}
}

func TestPublicAPIAugmentAndStretch(t *testing.T) {
	g := distspanner.RandomGraph(20, 0.4, 9)
	initial := distspanner.NewEdgeSet(g.M())
	initial.Add(0)
	res, err := distspanner.Build2SpannerAugment(g, initial, distspanner.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !distspanner.VerifySpanner(g, res.Spanner, 2) {
		t.Fatal("augmented spanner invalid via facade")
	}
	st := distspanner.AnalyzeStretch(g, res.Spanner, -1)
	if st.Max < 1 || st.Max > 2 {
		t.Fatalf("stretch max = %d, want 1 or 2", st.Max)
	}
	if st.Mean <= 0 {
		t.Fatal("mean stretch missing")
	}
}
